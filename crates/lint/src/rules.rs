//! The rule catalog: each rule encodes one invariant of the workspace's
//! determinism/soundness contract (see DESIGN.md, "Determinism
//! contract"). Rules pattern-match on the lossless token stream of
//! non-test library code — string literals, comments, doc examples, and
//! `#[cfg(test)]` regions can never trigger them.

use crate::lexer::Token;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// One static-analysis rule.
///
/// A rule inspects a prepared [`SourceFile`] and pushes [`Violation`]s.
/// Implementations must be deterministic (violations in source order) and
/// purely lexical — they see tokens, never an AST.
pub trait Rule: Sync {
    /// Stable uppercase identifier (`"D1"`, `"S2"`, …) used in reports
    /// and waiver comments.
    fn id(&self) -> &'static str;
    /// How a hit is classified. All shipped rules are [`Severity::Deny`];
    /// the distinction exists so future advisory rules can ride the same
    /// engine.
    fn severity(&self) -> Severity;
    /// One-line description shown in reports and `W0` diagnostics.
    fn summary(&self) -> &'static str;
    /// Scans `file`, appending one violation per offending site.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// A cursor over the non-trivia, non-exempt tokens of a file, with the
/// shared helpers the rules need (use-declaration tracking, sequence
/// matching).
struct Code<'a> {
    tokens: &'a [Token],
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    fn new(file: &'a SourceFile) -> Self {
        Code {
            tokens: &file.tokens,
            idx: file.code_indices(),
        }
    }

    fn len(&self) -> usize {
        self.idx.len()
    }

    fn text(&self, k: usize) -> &str {
        self.tokens[self.idx[k]].text.as_str()
    }

    fn token(&self, k: usize) -> &Token {
        &self.tokens[self.idx[k]]
    }

    /// `true` when the `k`-th code token lies inside a `use` declaration.
    /// Import lines name types without invoking them, so type-name rules
    /// skip them — `rustc` already flags unused imports. Every `use`
    /// declaration in valid Rust terminates with `;`, so scanning
    /// backward, hitting `use` before any `;` means the token sits inside
    /// one (brace groups like `use x::{A, B};` included).
    fn in_use_decl(&self, k: usize) -> bool {
        let mut j = k;
        loop {
            match self.text(j) {
                ";" if j != k => return false,
                "use" => return true,
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
    }

    /// `true` if tokens `k..` spell out `parts` exactly.
    fn seq(&self, k: usize, parts: &[&str]) -> bool {
        parts
            .iter()
            .enumerate()
            .all(|(o, p)| k + o < self.len() && self.text(k + o) == *p)
    }
}

fn violation(rule: &dyn Rule, file: &SourceFile, tok: &Token, message: String) -> Violation {
    Violation {
        file: file.rel_path.clone(),
        line: tok.line,
        col: tok.col,
        rule: rule.id().to_string(),
        severity: rule.severity(),
        message,
    }
}

/// **D1 — no hash-ordered collections in library code.**
///
/// Flags every use of `HashMap`/`HashSet` outside `use` declarations.
/// Iteration order of the std hash collections varies per process and per
/// instance, so any hash map whose iteration reaches an output, a merge,
/// or a tie-break silently breaks the workspace's bit-identical-reports
/// guarantee. The rule is deliberately stricter than "no iteration": a
/// lexical pass cannot prove a map is never iterated, so every hash
/// collection must either be replaced by a sorted/dense indexed structure
/// (`Vec` indexed by id, `BTreeMap`, `BitSet`) or carry a waiver whose
/// justification explains why no iteration order can escape.
pub struct HashOrderRule;

impl Rule for HashOrderRule {
    fn id(&self) -> &'static str {
        "D1"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet in library code: iteration order is nondeterministic"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let code = Code::new(file);
        for k in 0..code.len() {
            let t = code.text(k);
            if (t == "HashMap" || t == "HashSet") && !code.in_use_decl(k) {
                out.push(violation(
                    self,
                    file,
                    code.token(k),
                    format!(
                        "{t} has nondeterministic iteration order; use a sorted/dense \
                         indexed structure (Vec-by-id, BTreeMap, BitSet) or waive with \
                         a justification that no iteration order escapes"
                    ),
                ));
            }
        }
    }
}

/// **D2 — no ambient wall-clock or entropy in library code.**
///
/// Flags `Instant::now`, `SystemTime::now`, and unseeded randomness
/// (`thread_rng`, `from_entropy`). Reports, traces, and sweeps must be
/// reproducible from inputs alone; time and entropy belong in benches
/// (which are exempt wholesale) or behind explicitly seeded generators
/// (`SeedableRng::seed_from_u64`, the workspace convention).
pub struct WallClockRule;

impl Rule for WallClockRule {
    fn id(&self) -> &'static str {
        "D2"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "wall-clock time or unseeded randomness in library code"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let code = Code::new(file);
        for k in 0..code.len() {
            let hit = if code.seq(k, &["Instant", ":", ":", "now"]) {
                Some("Instant::now")
            } else if code.seq(k, &["SystemTime", ":", ":", "now"]) {
                Some("SystemTime::now")
            } else if code.text(k) == "thread_rng" || code.text(k) == "from_entropy" {
                Some("unseeded randomness")
            } else {
                None
            };
            if let Some(what) = hit {
                if !code.in_use_decl(k) {
                    out.push(violation(
                        self,
                        file,
                        code.token(k),
                        format!(
                            "{what} makes output depend on the environment; thread \
                             timestamps through explicit parameters or seed RNGs with \
                             seed_from_u64, or waive with a justification that the \
                             value never reaches a report"
                        ),
                    ));
                }
            }
        }
    }
}

/// **D3 — no `partial_cmp` on the comparison path.**
///
/// Flags every `.partial_cmp(` call. On floats, `partial_cmp` returns
/// `None` for NaN — the idiomatic `partial_cmp(..).unwrap()` panics on
/// the first NaN bound and `sort_by(|a, b| a.partial_cmp(b).unwrap())`
/// poisons the order before it panics. `f64::total_cmp` is total,
/// deterministic, and what every comparator in this workspace uses (see
/// `dmc_core::analysis::best_lower_bound` for the regression that
/// motivated the rule).
pub struct FloatOrdRule;

impl Rule for FloatOrdRule {
    fn id(&self) -> &'static str {
        "D3"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "partial_cmp on the comparison path: use total_cmp"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let code = Code::new(file);
        for k in 0..code.len() {
            if code.seq(k, &[".", "partial_cmp", "("]) {
                out.push(violation(
                    self,
                    file,
                    code.token(k + 1),
                    "partial_cmp is not total on floats (None on NaN); order floats \
                     with f64::total_cmp, or waive with a justification for why the \
                     operands can never be NaN"
                        .to_string(),
                ));
            }
        }
    }
}

/// **S1 — no panicking escape hatches in library code.**
///
/// Flags `.unwrap()`, `.expect(`, `panic!`, `todo!`, and
/// `unimplemented!`. Library code is expected to return errors or
/// establish its preconditions with `assert!`/`debug_assert!` (which
/// state an invariant and are allowed); an unwrap is either a latent
/// panic or an undocumented invariant. Each surviving site must carry a
/// waiver whose justification names the invariant that makes it
/// unreachable.
///
/// The issue's "indexing by untrusted index" leg is *not* decidable
/// lexically (every `a[i]` looks alike without types); it is covered
/// indirectly — `#![forbid(unsafe_code)]` rules out unchecked indexing,
/// and slice indexing panics route into the same review as `assert!`.
pub struct PanicPathRule;

impl Rule for PanicPathRule {
    fn id(&self) -> &'static str {
        "S1"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "unwrap/expect/panic in library code without a waived invariant"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let code = Code::new(file);
        for k in 0..code.len() {
            let hit = if code.seq(k, &[".", "unwrap", "("]) || code.seq(k, &[".", "expect", "("]) {
                Some((k + 1, code.text(k + 1).to_string()))
            } else if (code.text(k) == "panic"
                || code.text(k) == "todo"
                || code.text(k) == "unimplemented")
                && code.seq(k + 1, &["!"])
            {
                Some((k, format!("{}!", code.text(k))))
            } else {
                None
            };
            if let Some((at, what)) = hit {
                out.push(violation(
                    self,
                    file,
                    code.token(at),
                    format!(
                        "{what} can panic at runtime; return an error, establish the \
                         precondition with assert!, or waive with the invariant that \
                         makes this site unreachable"
                    ),
                ));
            }
        }
    }
}

/// **S2 — thread fan-outs must merge deterministically.**
///
/// Flags every `thread::scope` in library code. Ad-hoc scoped fan-outs
/// are where nondeterministic merge order creeps in; the workspace's one
/// blessed shape is [`fan_out_indexed`] (`dmc_cdag::fanout`), which pulls
/// indices from an atomic counter and reassembles results **by index** so
/// output is bit-identical at any worker count. `fan_out_indexed`'s own
/// implementation carries the waiver that bootstraps the rule.
///
/// [`fan_out_indexed`]: https://docs.rs/dmc-cdag
pub struct ScopeFanoutRule;

impl Rule for ScopeFanoutRule {
    fn id(&self) -> &'static str {
        "S2"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn summary(&self) -> &'static str {
        "raw thread::scope fan-out: merge through dmc_cdag::fanout::fan_out_indexed"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let code = Code::new(file);
        for k in 0..code.len() {
            if code.seq(k, &["thread", ":", ":", "scope"]) && !code.in_use_decl(k) {
                out.push(violation(
                    self,
                    file,
                    code.token(k),
                    "raw thread::scope fan-out can merge results in scheduling order; \
                     route the fan-out through dmc_cdag::fanout::fan_out_indexed \
                     (index-ordered merge), or waive with a justification for why the \
                     merge is order-independent"
                        .to_string(),
                ));
            }
        }
    }
}

/// The full shipped rule set, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashOrderRule),
        Box::new(WallClockRule),
        Box::new(FloatOrdRule),
        Box::new(PanicPathRule),
        Box::new(ScopeFanoutRule),
    ]
}

/// `true` if `id` names a shipped rule (case-insensitive).
pub fn is_known_rule(id: &str) -> bool {
    all_rules().iter().any(|r| r.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: &dyn Rule, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        rule.check(&f, &mut out);
        out
    }

    #[test]
    fn d1_flags_usage_not_imports() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let v = run(&HashOrderRule, src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.line == 2));
    }

    #[test]
    fn d2_flags_clock_and_entropy() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = thread_rng(); }\n";
        let v = run(&WallClockRule, src);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn d3_flags_partial_cmp_calls_only() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); a.total_cmp(&b); }\n";
        let v = run(&FloatOrdRule, src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn s1_flags_panicking_forms_not_fallbacks() {
        let src = "fn f(o: Option<u32>) { o.unwrap(); o.expect(\"x\"); o.unwrap_or(0); \
                   o.unwrap_or_else(|| 1); panic!(\"no\"); }\n";
        let v = run(&PanicPathRule, src);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn s2_flags_scope() {
        let src = "fn f() { std::thread::scope(|s| {}); }\n";
        assert_eq!(run(&ScopeFanoutRule, src).len(), 1);
    }

    #[test]
    fn strings_comments_and_tests_never_fire() {
        let src = "// HashMap.unwrap() thread::scope Instant::now\n\
                   fn f() { let s = \"panic! HashSet\"; }\n\
                   #[cfg(test)] mod t { fn g() { x.unwrap(); } }\n";
        for rule in all_rules() {
            assert!(run(rule.as_ref(), src).is_empty(), "{}", rule.id());
        }
    }
}
