//! A lossless, line/column-tracked lexer for Rust source text.
//!
//! The lexer is *total*: any byte sequence tokenizes without panicking,
//! unknown characters become one-character [`TokenKind::Punct`] tokens,
//! and unterminated literals/comments swallow the rest of the file as a
//! single token. Because no character is ever dropped or normalized,
//! concatenating the token texts reproduces the input exactly —
//! [`render`]`(`[`tokenize`]`(src)) == src` for **every** input, which is
//! property-tested in `tests/lexer_roundtrip.rs`.
//!
//! This is deliberately not a parser (no `syn`, consistent with the
//! workspace's no-registry vendoring policy): rules pattern-match on the
//! token stream. The kinds below are exactly what the rule engine needs —
//! comments and string/char literals are first-class tokens so that rule
//! patterns can never fire inside them, and doc-comment examples (which
//! lex as comments) are exempt for free.

/// Classification of one lexeme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// `// ...` through end of line, including `///` and `//!` doc forms.
    LineComment,
    /// `/* ... */`, nested; unterminated comments extend to EOF.
    BlockComment,
    /// Identifiers and keywords (including raw `r#ident` forms).
    Ident,
    /// A lifetime or loop label such as `'a` (distinguished from char
    /// literals by the absence of a closing quote).
    Lifetime,
    /// Integer and float literals, including exponents and suffixes.
    Number,
    /// String literals: `"…"`, raw `r"…"`/`r#"…"#`, and byte forms.
    Str,
    /// Character and byte-character literals: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation or unknown character.
    Punct,
}

/// One lexeme: its kind, exact source text, and 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the lexeme is.
    pub kind: TokenKind,
    /// The exact slice of source text (never normalized).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// `true` for tokens the rule engine skips (whitespace and comments).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Concatenates token texts back into source text.
///
/// The lossless-lexing contract: `render(&tokenize(src)) == src` for any
/// `src` (see `tests/lexer_roundtrip.rs`).
pub fn render(tokens: &[Token]) -> String {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

/// Tokenizes `src` losslessly. Never panics; see the module docs for the
/// totality guarantees.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Emits the token spanning `start..self.pos` and advances line/col
    /// bookkeeping over its text.
    fn emit(&mut self, kind: TokenKind, start: usize) {
        let text: String = self.chars[start..self.pos].iter().collect();
        let (line, col) = (self.line, self.col);
        for c in &self.chars[start..self.pos] {
            if *c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            match c {
                c if c.is_whitespace() => {
                    while self.peek(0).is_some_and(|c| c.is_whitespace()) {
                        self.pos += 1;
                    }
                    self.emit(TokenKind::Whitespace, start);
                }
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.pos += 1;
                    }
                    self.emit(TokenKind::LineComment, start);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start);
                }
                // Raw identifiers and raw strings share the `r` prefix;
                // byte strings/chars the `b` prefix. Try those shapes
                // before falling back to a plain identifier.
                'r' | 'b' if self.try_prefixed_literal() => {}
                c if c.is_alphabetic() || c == '_' => {
                    self.ident();
                    self.emit(TokenKind::Ident, start);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.emit(TokenKind::Number, start);
                }
                '"' => {
                    self.pos += 1;
                    self.string_body('"');
                    self.emit(TokenKind::Str, start);
                }
                '\'' => self.quote(),
                _ => {
                    self.pos += 1;
                    self.emit(TokenKind::Punct, start);
                }
            }
        }
        self.tokens
    }

    fn block_comment(&mut self) {
        // `/*`, nested to arbitrary depth; unterminated runs to EOF.
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
    }

    fn ident(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
    }

    fn number(&mut self) {
        // Permissive numeric scan: digits, underscores, radix prefixes,
        // `.` between digits, exponents with optional sign, suffixes.
        // Over-accepting is fine — the renderer only needs the exact text.
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            let continues = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(self.chars.get(self.pos - 1), Some('e') | Some('E'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !continues {
                break;
            }
            self.pos += 1;
        }
    }

    /// Consumes a string body after the opening quote, honoring `\`
    /// escapes; unterminated bodies run to EOF.
    fn string_body(&mut self, close: char) {
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            if c == '\\' {
                if self.peek(0).is_some() {
                    self.pos += 1;
                }
            } else if c == close {
                break;
            }
        }
    }

    /// `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'` — returns
    /// `false` (consuming nothing) when the shape is not one of these, so
    /// the caller falls through to plain-identifier lexing.
    fn try_prefixed_literal(&mut self) -> bool {
        let start = self.pos;
        let first = self.peek(0);
        let mut i = 1; // past `r` or `b`
        if first == Some('b') && self.peek(i) == Some('r') {
            i += 1;
        }
        // Count `#`s of a raw literal.
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(i + hashes) {
            Some('"') if first == Some('r') || self.peek(1) == Some('r') || hashes == 0 => {
                // Raw or byte string.
                let is_raw =
                    first == Some('r') || (first == Some('b') && self.peek(1) == Some('r'));
                if !is_raw && hashes > 0 {
                    return false;
                }
                self.pos += i + hashes + 1;
                if is_raw {
                    self.raw_string_body(hashes);
                } else {
                    self.string_body('"');
                }
                self.emit(TokenKind::Str, start);
                true
            }
            Some(c) if first == Some('r') && hashes == 1 && (c.is_alphabetic() || c == '_') => {
                // Raw identifier `r#ident`.
                self.pos += 2;
                self.ident();
                self.emit(TokenKind::Ident, start);
                true
            }
            Some('\'') if first == Some('b') && hashes == 0 && i == 1 => {
                // Byte char `b'…'`.
                self.pos += 2;
                self.string_body('\'');
                self.emit(TokenKind::Char, start);
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string with `hashes` leading `#`s, after the opening
    /// quote: runs to `"` followed by that many `#`s (no escapes).
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                self.pos += hashes;
                break;
            }
        }
    }

    /// `'` starts either a lifetime/label (`'a`) or a char literal
    /// (`'a'`, `'\n'`). A quote followed by an identifier char that is
    /// *not* closed by another quote is a lifetime.
    fn quote(&mut self) {
        let start = self.pos;
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Scan the identifier run; a closing quote right after a
                // one-char run means a char literal like 'x'.
                let mut j = 2;
                while self
                    .peek(j)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    j += 1;
                }
                self.peek(j) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            self.ident();
            self.emit(TokenKind::Lifetime, start);
        } else {
            self.pos += 1;
            self.string_body('\'');
            self.emit(TokenKind::Char, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn roundtrips_basic_source() {
        let src = "fn main() { let x = 1.5e-3; println!(\"hi \\\" there\"); }\n";
        assert_eq!(render(&tokenize(src)), src);
    }

    #[test]
    fn comments_are_single_tokens() {
        let src = "a // trailing\n/* block /* nested */ done */ b";
        let t = kinds(src);
        assert_eq!(t[1].0, TokenKind::LineComment);
        assert_eq!(t[2].0, TokenKind::BlockComment);
        assert_eq!(t[2].1, "/* block /* nested */ done */");
        assert_eq!(render(&tokenize(src)), src);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("<'a> 'x' '\\n' 'static b'z'");
        assert_eq!(t[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(t[3], (TokenKind::Char, "'x'".into()));
        assert_eq!(t[4], (TokenKind::Char, "'\\n'".into()));
        assert_eq!(t[5], (TokenKind::Lifetime, "'static".into()));
        assert_eq!(t[6], (TokenKind::Char, "b'z'".into()));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "r\"plain\" r#\"has \" quote\"# r#match br#\"bytes\"# b\"b\"";
        let t = kinds(src);
        assert_eq!(t[0], (TokenKind::Str, "r\"plain\"".into()));
        assert_eq!(t[1], (TokenKind::Str, "r#\"has \" quote\"#".into()));
        assert_eq!(t[2], (TokenKind::Ident, "r#match".into()));
        assert_eq!(t[3], (TokenKind::Str, "br#\"bytes\"#".into()));
        assert_eq!(t[4], (TokenKind::Str, "b\"b\"".into()));
        assert_eq!(render(&tokenize(src)), src);
    }

    #[test]
    fn rule_tokens_inside_strings_and_comments_stay_inert() {
        let src = "let s = \"HashMap.unwrap()\"; // HashMap iter\n";
        let idents: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("ab\n  cd");
        let cd = toks.iter().find(|t| t.text == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"open", "/* open", "'x", "r#\"open", "b'"] {
            assert_eq!(render(&tokenize(src)), src, "{src:?}");
        }
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        let t = kinds("1_000u64 0xFFi32 2.5e-3 1.0f64 0b1010");
        assert!(t.iter().all(|(k, _)| *k == TokenKind::Number));
        assert_eq!(t.len(), 5);
    }
}
