//! `dmc-lint` — a determinism & soundness static-analysis pass over the
//! workspace's own Rust sources.
//!
//! Every subsystem in this workspace carries the same load-bearing
//! contract: reports, traces, and sweeps are **bit-identical at any
//! thread count**, bounds are **sound**, and tie-breaks are
//! **documented and deterministic**. This crate turns that contract from
//! a convention into a checked property: a hand-rolled lossless lexer
//! (no `syn`, consistent with the no-registry vendoring policy) feeds a
//! rule engine whose rules encode the repo's real invariants:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in non-test library code (nondeterministic iteration order) |
//! | `D2` | no `Instant::now`/`SystemTime::now`/unseeded randomness in library code |
//! | `D3` | no `partial_cmp` on comparison paths — floats order via `total_cmp` |
//! | `S1` | no `unwrap`/`expect`/`panic!` in library code without a waived invariant |
//! | `S2` | every `std::thread::scope` fan-out merges through `dmc_cdag::fanout::fan_out_indexed` |
//!
//! Sites that are genuinely safe carry an in-place waiver with a
//! mandatory justification:
//!
//! ```text
//! // dmc-lint: allow(d1) -- lookup-only map; no iteration order escapes
//! ```
//!
//! Waivers that stop suppressing anything are themselves reported
//! (exit code 2 from `repro lint`), so the justification inventory can
//! never drift from the code. See [`lint_workspace`] for the entry
//! point and `DESIGN.md` ("Determinism contract") for rule rationale
//! and waiver policy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{find_workspace_root, lint_source, lint_workspace, LintError};
pub use report::{LintReport, Severity, UnusedWaiver, Violation};
pub use rules::{all_rules, Rule};
