//! E2 — Section 3 composite example: prints the composite-vs-per-stage
//! table and benchmarks the RBW executor on the composite CDAG.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dmc_cdag::topo::topological_order;
use dmc_core::games::executor::{execute_rbw, EvictionPolicy};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::sec3_composite(&[2, 4, 8]));
    let mut group = c.benchmark_group("sec3");
    for n in [4usize, 8] {
        let g = dmc_kernels::composite::composite(n);
        let order = topological_order(&g);
        let s = 4 * n + 4;
        group.bench_function(format!("composite_exec/n{n}"), |b| {
            b.iter_batched(
                || (g.clone(), order.clone()),
                |(g, order)| {
                    execute_rbw(&g, s, &order, EvictionPolicy::Belady)
                        .expect("fits")
                        .io
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
