//! E5 — Theorem 9 + §5.3: prints the GMRES ratio sweep and benchmarks the
//! GMRES CDAG build and solver.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_kernels::gmres::gmres_cdag;
use dmc_kernels::grid::Stencil;
use dmc_solvers::grid::GridOperator;

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::gmres_experiment());
    let mut group = c.benchmark_group("gmres");
    group.bench_function("cdag_build/n6d1m4", |b| {
        b.iter(|| gmres_cdag(6, 1, 4, Stencil::VonNeumann).cdag.num_vertices())
    });
    let op = GridOperator::new(10, 3);
    let rhs = op.generic_rhs();
    group.bench_function("solver/10cubed_m30", |b| {
        b.iter(|| {
            dmc_solvers::gmres::gmres(
                |x, y| op.apply(x, y),
                &rhs,
                &vec![0.0; op.len()],
                30,
                1e-6,
                20,
            )
            .iterations
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
