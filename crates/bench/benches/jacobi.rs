//! E6 — Theorem 10 + §5.4: prints the Jacobi analysis (tiling ablation +
//! critical dimensions) and benchmarks the tiled vs untiled simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_kernels::grid::Stencil;
use dmc_kernels::jacobi::jacobi_cdag;
use dmc_machine::{Level, MemoryHierarchy};
use dmc_sim::{schedule, simulate};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::jacobi_experiment());
    let mut group = c.benchmark_group("jacobi");
    let j = jacobi_cdag(256, 1, 32, Stencil::VonNeumann);
    let h = MemoryHierarchy::new(vec![
        Level::new("L1", 1, 48),
        Level::new("mem", 1, u64::MAX),
    ])
    .expect("valid");
    let owner = vec![0usize; j.cdag.num_vertices()];
    let untiled = schedule::by_level(&j.cdag);
    let tiled = schedule::tiled_jacobi_1d(&j, 16);
    group.bench_function("simulate/untiled", |b| {
        b.iter(|| simulate(&j.cdag, &h, &untiled, &owner).total_dram_traffic())
    });
    group.bench_function("simulate/tiled_w16", |b| {
        b.iter(|| simulate(&j.cdag, &h, &tiled, &owner).total_dram_traffic())
    });
    group.bench_function("stencil_sweep_2d/n128", |b| {
        let u = vec![1.0f64; 128 * 128];
        let mut out = vec![0.0f64; 128 * 128];
        b.iter(|| dmc_solvers::jacobi::stencil_sweep_2d(&u, 128, &mut out))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
