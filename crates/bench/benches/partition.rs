//! Partition ablation: prints the Theorem-1 vs greedy table and benchmarks
//! partition construction + validation.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::topo::topological_order;
use dmc_core::games::executor::{execute_rbw, EvictionPolicy};
use dmc_core::partition::construct::{from_trace, greedy_partition};
use dmc_core::partition::validate_rbw;
use dmc_kernels::matmul;

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::partition_experiment());
    let mut group = c.benchmark_group("partition");
    let g = matmul::matmul(5);
    let order = topological_order(&g);
    let game = execute_rbw(&g, 16, &order, EvictionPolicy::Lru).expect("fits");
    group.bench_function("from_trace/matmul5_s16", |b| {
        b.iter(|| from_trace(&g, &game.trace, 16).partition.num_blocks())
    });
    group.bench_function("greedy/matmul5_s32", |b| {
        b.iter(|| greedy_partition(&g, &order, 32).num_blocks())
    });
    let p = greedy_partition(&g, &order, 32);
    group.bench_function("validate/matmul5_s32", |b| {
        b.iter(|| validate_rbw(&g, &p, 32).is_ok())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
