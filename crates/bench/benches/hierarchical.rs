//! E16 — flat vs hierarchical pipeline crossover.
//!
//! Benchmarks [`Analyzer::analyze`] (full flat portfolio, dominated by
//! the adaptive wavefront engine) against the hierarchical mode's
//! partition → per-cluster portfolio → Theorem-2 composition machinery
//! (size gates forced to 0 so neither the whole-graph wavefront nor the
//! flat comparison run — the configuration the 10⁷-vertex scale curve
//! actually uses). On sparse random layered DAGs the flat cost explodes
//! super-linearly with width while the composition stays linear, so the
//! crossover is visible already around a thousand vertices. The full
//! scale curve to 10⁷+ vertices lives in `repro scale` — criterion
//! iteration counts make those sizes impractical here.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
use dmc_kernels::random::{random_layered, RandomDagConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical");
    for (layers, width) in [(8usize, 64usize), (8, 128), (16, 128)] {
        let g = random_layered(RandomDagConfig {
            layers,
            width,
            deg: 3,
            edge_prob: 0.0,
            seed: 7,
        });
        let n = g.num_vertices();
        // The scale-mode configuration: Theorem-2 composition only.
        let opts = HierarchicalOptions {
            whole_wavefront_limit: 0,
            flat_compare_limit: 0,
            ..HierarchicalOptions::default()
        };
        for t in [1usize, 4] {
            let analyzer = Analyzer::new(AnalyzerConfig {
                sram: 4,
                threads: t,
                ..AnalyzerConfig::default()
            });
            group.bench_function(format!("flat_t{t}/{n}v"), |b| {
                b.iter(|| analyzer.analyze(&g).bound.value)
            });
            group.bench_function(format!("hier_t{t}/{n}v"), |b| {
                b.iter(|| analyzer.analyze_hierarchical(&g, &opts).bound.value)
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
);
criterion_main!(benches);
