//! E13 — the unified bound-analysis pipeline: prints the kernel table and
//! benchmarks [`Analyzer`] against the equivalent hand-wired analysis
//! (components → per-component portfolio → Theorem-2 sum, written out
//! manually), plus the pipeline's thread scaling on multi-component
//! inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::builder::disjoint_union;
use dmc_cdag::components::weakly_connected_components;
use dmc_cdag::subgraph;
use dmc_cdag::Cdag;
use dmc_core::bounds::decompose::{decomposition_sum, untag_inputs, untagging_transfer};
use dmc_core::bounds::mincut::{auto_wavefront_bound_with, AnchorStrategy};
use dmc_core::bounds::{best_lower_bound, IoBound};
use dmc_core::pipeline::{partition2s_bound, Analyzer, AnalyzerConfig};
use dmc_kernels::chains::ladder;

/// The pre-pipeline wiring every caller used to repeat: find components,
/// induce, run the methods, pick per-piece winners, sum with Theorem 2.
fn hand_wired(g: &Cdag, s: u64) -> f64 {
    let comps = weakly_connected_components(g);
    let pieces = subgraph::decompose(g, &comps.assignment, comps.count);
    let bounds: Vec<IoBound> = pieces
        .iter()
        .map(|p| {
            let wavefront = untagging_transfer(&auto_wavefront_bound_with(
                &untag_inputs(&p.cdag),
                s,
                AnchorStrategy::Adaptive,
                1,
            ));
            let trivial = IoBound::trivial(&p.cdag);
            let partition = partition2s_bound(&p.cdag, s);
            best_lower_bound([trivial, wavefront, partition]).expect("three candidates")
        })
        .collect();
    decomposition_sum(&bounds).value
}

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::analyze_experiment());
    let s = 4u64;
    let mut group = c.benchmark_group("analyze");
    for w in [6usize, 10, 14] {
        let g = disjoint_union(&[ladder(w, w), ladder(w - 1, w + 1), ladder(w + 1, w - 1)]);
        group.bench_function(format!("hand_wired/3xladder{w}"), |b| {
            b.iter(|| hand_wired(&g, s))
        });
        for t in [1usize, 2, 4] {
            let analyzer = Analyzer::new(AnalyzerConfig {
                sram: s,
                threads: t,
                ..AnalyzerConfig::default()
            });
            group.bench_function(format!("pipeline_t{t}/3xladder{w}"), |b| {
                b.iter(|| analyzer.analyze(&g).bound.value)
            });
        }
        // Without the whole-graph comparison baseline the pipeline does
        // the same work as the hand-wired loop (plus the report).
        let lean = Analyzer::new(AnalyzerConfig {
            sram: s,
            threads: 1,
            baseline: false,
            ..AnalyzerConfig::default()
        });
        group.bench_function(format!("pipeline_nobaseline/3xladder{w}"), |b| {
            b.iter(|| lean.analyze(&g).bound.value)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
