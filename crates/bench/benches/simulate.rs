//! E15 — empirical validation: prints the sandwich table, then
//! benchmarks the arena [`Simulation`] against the trace-building
//! certified RBW executor on the same schedules (the arena skips trace
//! materialization and game validation, which is the hot-path win), and
//! the S-sweep driver's thread scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc_kernels::catalog::Registry;
use dmc_sim::simulation::{sweep, CachePolicy, Simulation};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::simulate_experiment());
    let registry = Registry::shared();
    let mut group = c.benchmark_group("simulate");
    for spec_str in ["jacobi(n=32,d=1,t=16)", "matmul(n=6)", "fft(n=64)"] {
        let spec = registry.parse(spec_str).expect("bench specs are valid");
        let g = spec.build();
        let sched = spec.schedule_source(&g, 32);
        let mut sim = Simulation::new();
        group.bench_function(format!("arena_lru/{spec_str}"), |b| {
            b.iter(|| {
                sim.run(&g, &sched.order, CachePolicy::Lru, 32)
                    .expect("feasible")
                    .io()
            })
        });
        group.bench_function(format!("executor_lru/{spec_str}"), |b| {
            b.iter(|| {
                certified_upper_bound(&g, 32, &sched.order, EvictionPolicy::Lru).expect("feasible")
            })
        });
    }
    // The sweep driver: same points, 1/2/4 workers, identical reports.
    let spec = registry
        .parse("jacobi(n=64,d=1,t=32)")
        .expect("bench specs are valid");
    let g = spec.build();
    let sched = spec.schedule_source(&g, 64);
    let srams: Vec<u64> = (8..72).collect();
    for t in [1usize, 2, 4] {
        group.bench_function(format!("sweep_t{t}/jacobi(n=64,d=1,t=32)"), |b| {
            b.iter(|| sweep(&g, &sched.order, CachePolicy::Lru, &srams, t).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
