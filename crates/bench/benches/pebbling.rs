//! E10 — validation sandwich: prints the LB ≤ optimal ≤ heuristic table
//! and benchmarks the game engines (exact solver, executor policies).

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::topo::topological_order;
use dmc_core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc_core::games::optimal::{optimal_io, GameKind};
use dmc_kernels::{chains, matmul};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::pebbling_experiment());
    let mut group = c.benchmark_group("pebbling");
    let g = chains::ladder(3, 3);
    group.bench_function("optimal/ladder3x3_s4", |b| {
        b.iter(|| optimal_io(&g, 4, GameKind::Rbw))
    });
    let g = matmul::matmul(6);
    let order = topological_order(&g);
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::Belady,
        EvictionPolicy::Fifo,
    ] {
        group.bench_function(format!("executor/matmul6_s32_{policy:?}"), |b| {
            b.iter(|| certified_upper_bound(&g, 32, &order, policy).expect("fits"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
