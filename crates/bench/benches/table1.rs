//! E1 — Table 1: prints the machine-balance table and benchmarks balance
//! computation (trivially fast; included for completeness of the per-table
//! bench mapping).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::table1());
    c.bench_function("table1/balance_computation", |b| {
        b.iter(|| {
            let machines = dmc_machine::specs::table1_machines();
            machines
                .iter()
                .map(|m| m.vertical_balance() + m.horizontal_balance())
                .sum::<f64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
