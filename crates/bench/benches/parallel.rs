//! E12 — parallel accounting: prints the P-RBW / simulator tables and
//! benchmarks the parallel executors.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::topo::topological_order;
use dmc_kernels::chains;
use dmc_kernels::grid::Stencil;
use dmc_kernels::jacobi::jacobi_cdag;
use dmc_machine::{Level, MemoryHierarchy};
use dmc_sim::{schedule, simulate};

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::parallel_experiment());
    let mut group = c.benchmark_group("parallel");
    let g = chains::ladder(8, 8);
    let h = MemoryHierarchy::new(vec![
        Level::new("regs", 4, 16),
        Level::new("mem", 2, 1 << 20),
    ])
    .expect("valid");
    let order = topological_order(&g);
    let owner: Vec<usize> = (0..g.num_vertices()).map(|i| (i / 16) % 4).collect();
    group.bench_function("prbw_owner_computes/ladder8x8", |b| {
        b.iter(|| {
            dmc_core::games::prbw::execute_owner_computes(&g, &h, &order, &owner)
                .expect("valid")
                .total_horizontal()
        })
    });
    let j = jacobi_cdag(64, 1, 4, Stencil::VonNeumann);
    let owner = schedule::jacobi_block_owner(&j, 4);
    let hs = MemoryHierarchy::new(vec![
        Level::new("L1", 4, 32),
        Level::new("mem", 4, u64::MAX),
    ])
    .expect("valid");
    let sched = schedule::by_level(&j.cdag);
    group.bench_function("simulate_block_jacobi/n64t4p4", |b| {
        b.iter(|| simulate(&j.cdag, &hs, &sched, &owner).total_horizontal())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
