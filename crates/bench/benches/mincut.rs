//! E11 — §3.3: prints the automated min-cut wavefront tables and
//! benchmarks the Dinic vertex-min-cut on growing CDAGs (anchor-strategy
//! ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::bounds::decompose::untag_inputs;
use dmc_core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc_kernels::chains::ladder;

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::mincut_experiment());
    let mut group = c.benchmark_group("mincut");
    for w in [6usize, 10, 14] {
        let g = untag_inputs(&ladder(w, w));
        group.bench_function(format!("auto_all/ladder{w}"), |b| {
            b.iter(|| auto_wavefront_bound(&g, 2, AnchorStrategy::All).value)
        });
        group.bench_function(format!("auto_perlevel/ladder{w}"), |b| {
            b.iter(|| auto_wavefront_bound(&g, 2, AnchorStrategy::PerLevel).value)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
