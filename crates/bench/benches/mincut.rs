//! E11 — §3.3: prints the automated min-cut wavefront tables and
//! benchmarks the Dinic vertex-min-cut on growing CDAGs: anchor-strategy
//! ablation plus the batched [`WavefrontEngine`] against the naive serial
//! loop (fresh network + reachability per anchor).

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::cut::max_min_wavefront;
use dmc_cdag::engine::WavefrontEngine;
use dmc_cdag::VertexId;
use dmc_core::bounds::decompose::untag_inputs;
use dmc_core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc_kernels::chains::ladder;

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::mincut_experiment());
    let mut group = c.benchmark_group("mincut");
    for w in [6usize, 10, 14] {
        let g = untag_inputs(&ladder(w, w));
        group.bench_function(format!("auto_all/ladder{w}"), |b| {
            b.iter(|| auto_wavefront_bound(&g, 2, AnchorStrategy::All).value)
        });
        group.bench_function(format!("auto_perlevel/ladder{w}"), |b| {
            b.iter(|| auto_wavefront_bound(&g, 2, AnchorStrategy::PerLevel).value)
        });
        group.bench_function(format!("auto_adaptive/ladder{w}"), |b| {
            b.iter(|| auto_wavefront_bound(&g, 2, AnchorStrategy::Adaptive).value)
        });
    }
    group.finish();

    // Engine vs the naive serial loop, all anchors. The engine must win
    // via arena reuse + pruning even at 1 thread; the thread sweep shows
    // the parallel scaling on multi-core runners.
    let mut group = c.benchmark_group("mincut_engine");
    for w in [8usize, 16] {
        let g = untag_inputs(&ladder(w, w));
        let anchors: Vec<VertexId> = g.vertices().collect();
        group.bench_function(format!("naive_serial/ladder{w}"), |b| {
            b.iter(|| max_min_wavefront(&g, &anchors).map(|m| m.size))
        });
        for t in [1usize, 2, 4] {
            group.bench_function(format!("engine_t{t}/ladder{w}"), |b| {
                let engine = WavefrontEngine::new(&g).with_threads(t);
                b.iter(|| engine.run(&anchors).best.map(|m| m.size))
            });
        }
    }
    group.finish();

    // Headline comparison (ROADMAP scale target): ladder(64,64) with All
    // anchors — 4096 independent max-flows per iteration. Engine at
    // automatic thread count vs the naive loop.
    let mut group = c.benchmark_group("mincut_engine_ladder64");
    let g = untag_inputs(&ladder(64, 64));
    let anchors: Vec<VertexId> = g.vertices().collect();
    group.bench_function("naive_serial", |b| {
        b.iter(|| max_min_wavefront(&g, &anchors).map(|m| m.size))
    });
    group.bench_function("engine_auto", |b| {
        let engine = WavefrontEngine::new(&g);
        b.iter(|| engine.run(&anchors).best.map(|m| m.size))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
