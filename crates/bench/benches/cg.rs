//! E3/E4 — Theorem 8 + §5.2: prints the CG analysis and benchmarks the
//! pieces (CDAG generation, wavefront min-cut, and the actual CG solver).

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::cut::min_wavefront;
use dmc_kernels::cg::cg_cdag;
use dmc_kernels::grid::Stencil;
use dmc_solvers::grid::GridOperator;

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::cg_experiment());
    let mut group = c.benchmark_group("cg");
    group.bench_function("cdag_build/n8d1t2", |b| {
        b.iter(|| cg_cdag(8, 1, 2, Stencil::VonNeumann).cdag.num_vertices())
    });
    let cg = cg_cdag(6, 1, 1, Stencil::VonNeumann);
    group.bench_function("wavefront_mincut/n6d1", |b| {
        b.iter(|| min_wavefront(&cg.cdag, cg.marks[0].upsilon_x).size)
    });
    let op = GridOperator::new(12, 3);
    let rhs = op.generic_rhs();
    group.bench_function("solver/12cubed", |b| {
        b.iter(|| {
            dmc_solvers::cg::cg(|x, y| op.apply(x, y), &rhs, &vec![0.0; op.len()], 1e-6, 300)
                .iterations
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
