//! Flow-core microbenchmarks: the three generations of the per-anchor
//! wavefront solver, side by side on the same anchor sweeps.
//!
//! * `dinic_general` — the original hot path: per anchor, fresh DFS
//!   reachability, fresh split network, general path-at-a-time Dinic.
//! * `fresh_unit` — same fresh-per-anchor shape, but the Even–Tarjan
//!   phase-saturating unit-capacity solver.
//! * `warm_batched` — the current engine inner loop: one word-parallel
//!   `BatchReach` sweep per 64 anchors plus a single warm-started
//!   `WarmCut` network patched between consecutive anchors.
//!
//! Families: ladder grids (deep, narrow cuts) and a seeded random layered
//! DAG (wide, irregular cuts).

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_cdag::bitset::BitSet;
use dmc_cdag::flow::{FlowNetwork, WarmCut};
use dmc_cdag::reach::{ancestors_into, descendants_into, BatchReach};
use dmc_cdag::topo::topological_order;
use dmc_cdag::{Cdag, VertexId};
use dmc_core::bounds::decompose::untag_inputs;
use dmc_kernels::chains::ladder;
use dmc_kernels::random::{random_layered, RandomDagConfig};

/// Effectively-infinite capacity, mirroring the library's split networks.
const INF: u32 = u32::MAX / 4;

/// Builds the vertex-split wavefront network for one anchor into `net`
/// (sources cuttable, sinks not) and returns the max flow — the historical
/// fresh-per-anchor solve, with the solver strategy chosen by `unit`.
fn fresh_cut(g: &Cdag, sources: &BitSet, sinks: &BitSet, net: &mut FlowNetwork, unit: bool) -> u64 {
    let n = g.num_vertices();
    let (s, t) = (2 * n, 2 * n + 1);
    net.reset(2 * n + 2);
    net.set_unit_capacity(unit);
    for v in 0..n {
        net.add_arc(2 * v, 2 * v + 1, if sinks.contains(v) { INF } else { 1 });
    }
    for (u, v) in g.edges() {
        net.add_arc(2 * u.index() + 1, 2 * v.index(), INF);
    }
    for v in sources.iter() {
        net.add_arc(s, 2 * v, INF);
    }
    for v in sinks.iter() {
        net.add_arc(2 * v + 1, t, INF);
    }
    net.max_flow(s, t)
}

/// Sweeps every vertex as an anchor with fresh per-anchor reachability and
/// a fresh split network; returns the max cut (the Lemma-2 `w^max`).
fn sweep_fresh(g: &Cdag, order: &[VertexId], unit: bool) -> u64 {
    let n = g.num_vertices();
    let mut net = FlowNetwork::new(0);
    let mut sources = BitSet::new(n);
    let mut sinks = BitSet::new(n);
    let mut stack = Vec::new();
    let mut best = 0u64;
    for &x in order {
        ancestors_into(g, x, &mut sources, &mut stack);
        sources.insert(x.index());
        descendants_into(g, x, &mut sinks, &mut stack);
        if sinks.is_empty() {
            continue;
        }
        best = best.max(fresh_cut(g, &sources, &sinks, &mut net, unit));
    }
    best
}

/// Sweeps every vertex as an anchor through the engine's inner loop: one
/// `BatchReach` word-parallel sweep per 64 anchors, one warm-started
/// `WarmCut` network patched between consecutive (topologically ordered)
/// anchors.
fn sweep_warm_batched(g: &Cdag, order: &[VertexId]) -> u64 {
    let n = g.num_vertices();
    let mut warm = WarmCut::new(g);
    let mut batch = BatchReach::new();
    let mut supply = BitSet::new(n);
    let mut drain = BitSet::new(n);
    let mut blocked = BitSet::new(n);
    let mut best = 0u64;
    for chunk in order.chunks(64) {
        batch.compute(g, order, chunk);
        for (j, _) in chunk.iter().enumerate() {
            batch.fill_drain(j, &mut drain);
            if drain.is_empty() {
                continue;
            }
            batch.fill_supply(j, &mut supply);
            batch.fill_blocked(j, &mut blocked);
            let cut = warm
                .min_cut_roles(&supply, &drain, &blocked)
                .expect("wavefront cuts are bounded");
            best = best.max(cut.size as u64);
        }
    }
    best
}

fn bench(c: &mut Criterion) {
    let families: Vec<(String, Cdag)> = vec![
        ("ladder16".to_string(), untag_inputs(&ladder(16, 16))),
        ("ladder24".to_string(), untag_inputs(&ladder(24, 24))),
        (
            "random_l24_w24".to_string(),
            random_layered(RandomDagConfig {
                layers: 24,
                width: 24,
                deg: 3,
                edge_prob: 0.0,
                seed: 7,
            }),
        ),
    ];
    let mut group = c.benchmark_group("flowcore");
    for (name, g) in &families {
        let order = topological_order(g);
        // The three sweeps must agree before we time them.
        let want = sweep_fresh(g, &order, false);
        assert_eq!(want, sweep_fresh(g, &order, true), "{name}: unit diverged");
        assert_eq!(want, sweep_warm_batched(g, &order), "{name}: warm diverged");
        group.bench_function(format!("dinic_general/{name}"), |b| {
            b.iter(|| sweep_fresh(g, &order, false))
        });
        group.bench_function(format!("fresh_unit/{name}"), |b| {
            b.iter(|| sweep_fresh(g, &order, true))
        });
        group.bench_function(format!("warm_batched/{name}"), |b| {
            b.iter(|| sweep_warm_batched(g, &order))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
