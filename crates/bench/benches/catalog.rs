//! E14 — the kernel catalog: prints the registry sweep, then benchmarks
//! the spec path itself — parse, parse+build, and the full
//! spec-to-pipeline-report round trip — against calling the hand-wired
//! builder directly, across a spread of spec-built kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
use dmc_kernels::catalog::Registry;
use dmc_kernels::grid::Stencil;

const SPECS: &[&str] = &[
    "jacobi(n=8,d=2,t=4)",
    "fft(n=64)",
    "matmul(n=6)",
    "composite(n=4)",
    "gmres(n=5,d=1,m=3)",
    "ladder(w=12,h=12)",
];

fn bench(c: &mut Criterion) {
    println!("{}", dmc_bench::catalog_experiment());
    let registry = Registry::shared();
    let mut group = c.benchmark_group("catalog");
    // Spec parsing alone: the string-to-ParamValues layer.
    group.bench_function("parse/all_specs", |b| {
        b.iter(|| {
            SPECS
                .iter()
                .map(|s| registry.parse(s).expect("valid").render().len())
                .sum::<usize>()
        })
    });
    // The catalog overhead on top of the raw builder must be noise: the
    // same CDAG built through the spec path vs the free function.
    group.bench_function("build/spec/jacobi", |b| {
        let spec = registry.parse("jacobi(n=8,d=2,t=4)").expect("valid");
        b.iter(|| spec.build().num_vertices())
    });
    group.bench_function("build/hand_wired/jacobi", |b| {
        b.iter(|| {
            dmc_kernels::jacobi::jacobi_cdag(8, 2, 4, Stencil::VonNeumann)
                .cdag
                .num_vertices()
        })
    });
    // Full spec-to-report pipeline sweep.
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram: 4,
        threads: 1,
        ..AnalyzerConfig::default()
    });
    for spec_str in SPECS {
        let spec = registry.parse(spec_str).expect("valid");
        let label = spec.kernel().name();
        group.bench_function(format!("analyze_spec/{label}"), |b| {
            b.iter(|| analyzer.analyze_kernel(&spec).bound.value)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
