//! Smoke tests for the `repro` binary's argument dispatch.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_exits_with_usage_error() {
    let out = repro()
        .arg("definitely-not-an-experiment")
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown experiment must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment 'definitely-not-an-experiment'"),
        "stderr names the bad argument: {stderr}"
    );
    // The error must list the valid experiments so the message stays in
    // sync with the dispatch table.
    for exp in [
        "table1",
        "sec3",
        "cg",
        "gmres",
        "jacobi",
        "pebbling",
        "mincut",
        "analyze",
        "catalog",
        "simulate",
        "list",
        "partition",
        "parallel",
        "figures",
        "all",
    ] {
        assert!(
            stderr.contains(exp),
            "usage message lists '{exp}': {stderr}"
        );
    }
    assert!(out.stdout.is_empty(), "nothing on stdout for bad args");
}

#[test]
fn table1_prints_the_balance_table() {
    let out = repro().arg("table1").output().expect("repro binary runs");
    assert!(out.status.success(), "table1 must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("IBM BG/Q"), "Table 1 lists BG/Q: {stdout}");
    assert!(stdout.contains("Cray XT5"), "Table 1 lists XT5: {stdout}");
}

#[test]
fn mincut_honours_threads_flag() {
    let out = repro()
        .args(["mincut", "--threads", "2"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "mincut --threads 2 must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("engine scaling"),
        "mincut prints the engine scaling table: {stdout}"
    );
    assert!(
        stdout.contains("adaptive"),
        "mincut prints the adaptive ablation row: {stdout}"
    );
}

#[test]
fn bad_threads_value_exits_with_usage_error() {
    let out = repro()
        .args(["mincut", "--threads", "lots"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --threads must exit 2");
}

/// Path to a `.cdag` file shipped under the repository's
/// `examples/graphs/` (two directories up from this crate).
fn graph_path(name: &str) -> String {
    format!(
        "{}/../../examples/graphs/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn analyze_without_file_prints_the_kernel_table() {
    let out = repro().arg("analyze").output().expect("repro binary runs");
    assert!(out.status.success(), "analyze must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("unified bound-analysis pipeline"),
        "{stdout}"
    );
    assert!(stdout.contains("Theorem-2"), "{stdout}");
}

#[test]
fn analyze_reports_provenance_tree_for_shipped_composite() {
    let out = repro()
        .args(["analyze", &graph_path("composite.cdag"), "--threads", "2"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "analyze composite.cdag must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("weakly-connected components: 2"),
        "{stdout}"
    );
    assert!(
        stdout.contains("composed per-component bound (Theorem 2)"),
        "{stdout}"
    );
    assert!(stdout.contains("machine-balance verdicts"), "{stdout}");
}

#[test]
fn analyze_json_output_is_json_shaped() {
    let out = repro()
        .args([
            "analyze",
            &graph_path("composite.cdag"),
            "--threads",
            "2",
            "--format",
            "json",
        ])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "analyze --format json must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let body = stdout.trim();
    assert!(body.starts_with('{') && body.ends_with('}'), "{stdout}");
    for key in ["\"component_count\":2", "\"bound\":", "\"children\":["] {
        assert!(body.contains(key), "missing {key}: {stdout}");
    }
    // Balanced braces/brackets — a cheap structural check that keeps the
    // emitter honest without a JSON parser in the test.
    let depth = body.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON: {stdout}");
}

#[test]
fn analyze_missing_file_exits_with_error() {
    let out = repro()
        .args(["analyze", "no-such-file.cdag"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(1), "missing file must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-file.cdag"), "{stderr}");
}

/// Regression: `--sram`/`--format` used to be parsed and then silently
/// dropped by every mode except `analyze <file>` — e.g. `analyze
/// --format json` printed the *text* kernel table with exit 0.
#[test]
fn sram_and_format_rejected_where_they_do_not_apply() {
    for (args, msg) in [
        (
            &["analyze", "--format", "json"][..],
            "--format only applies",
        ),
        (&["analyze", "--sram", "9"][..], "--sram only applies"),
        (&["table1", "--format", "json"][..], "--format only applies"),
        (&["mincut", "--sram", "8"][..], "--sram only applies"),
        (
            &["table1", "--policy", "lru"][..],
            "only apply to 'simulate'",
        ),
        (
            &["analyze", "--sram-sweep", "2:8:2"][..],
            "only apply to 'simulate'",
        ),
    ] {
        let out = repro().args(args).output().expect("repro binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(msg), "{args:?}: {stderr}");
    }
    // Same rule for --threads on experiments that cannot use it.
    for args in [
        &["table1", "--threads", "2"][..],
        &["figures", "--threads", "2"][..],
    ] {
        let out = repro().args(args).output().expect("repro binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--threads only applies to"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn list_prints_the_kernel_catalog() {
    let out = repro().arg("list").output().expect("repro binary runs");
    assert!(out.status.success(), "list must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kernel catalog"), "{stdout}");
    assert!(stdout.contains("spec grammar"), "{stdout}");
    // Ranges and defaults for a parameterized and a choice param.
    assert!(
        stdout.contains("jacobi(n=8,d=2,t=4,stencil=star)"),
        "{stdout}"
    );
    assert!(stdout.contains("star|box"), "{stdout}");
    assert!(stdout.contains("default"), "{stdout}");
}

#[test]
fn catalog_experiment_sweeps_the_registry() {
    let out = repro()
        .args(["catalog", "--threads", "2"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "catalog must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("kernel catalog through the pipeline"),
        "{stdout}"
    );
    for spec in ["jacobi(", "fft(", "matmul(", "composite(", "gmres("] {
        assert!(
            stdout.contains(spec),
            "catalog table lists {spec}: {stdout}"
        );
    }
}

/// The `--kernel` + `--format json` round trip: the JSON report carries
/// the canonical spec, and re-running `repro` with that canonical spec
/// reproduces the report byte for byte.
#[test]
fn analyze_kernel_json_round_trips_through_the_canonical_spec() {
    let run = |spec: &str| {
        let out = repro()
            .args([
                "analyze",
                "--kernel",
                spec,
                "--threads",
                "1",
                "--format",
                "json",
            ])
            .output()
            .expect("repro binary runs");
        assert!(
            out.status.success(),
            "analyze --kernel '{spec}' must exit 0"
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run("jacobi(n=8,d=2,t=4)");
    let body = first.trim();
    assert!(body.starts_with('{') && body.ends_with('}'), "{first}");
    // The canonical spec (defaults filled in) is embedded in the report.
    let canonical = "jacobi(n=8,d=2,t=4,stencil=star)";
    assert!(
        body.contains(&format!(r#""kernel":{{"spec":"{canonical}""#)),
        "{first}"
    );
    assert!(body.contains(r#""analytic_lower":"#), "{first}");
    // Balanced braces/brackets — cheap structural JSON check.
    let depth = body.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON: {first}");
    // Round trip: the canonical spec reproduces the exact same report.
    assert_eq!(run(canonical), first, "canonical spec must round-trip");
}

/// Satellite acceptance: a bad spec is a *usage* error — exit code 2 and
/// a message that names the problem and points at the catalog.
#[test]
fn analyze_bad_kernel_spec_exits_2_with_helpful_message() {
    let cases: &[(&str, &str)] = &[
        ("jacobbi(n=8)", "unknown kernel 'jacobbi'"),
        ("jacobi(q=8)", "unknown parameter 'q'"),
        ("jacobi(d=99)", "out of range"),
        ("jacobi(stencil=hex)", "star|box"),
        ("fft(n=12)", "power of two"),
        ("jacobi(n=8", "missing closing"),
    ];
    for (spec, needle) in cases {
        let out = repro()
            .args(["analyze", "--kernel", spec])
            .output()
            .expect("repro binary runs");
        assert_eq!(out.status.code(), Some(2), "'{spec}' must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "'{spec}': {stderr}");
        assert!(
            stderr.contains("repro list"),
            "'{spec}' should point at the catalog: {stderr}"
        );
        assert!(out.stdout.is_empty(), "nothing on stdout for bad specs");
    }
}

#[test]
fn kernel_flag_rejected_outside_analyze_and_with_a_file() {
    let out = repro()
        .args(["table1", "--kernel", "fft(n=8)"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--kernel only applies to 'analyze'"),
        "{stderr}"
    );
    let out = repro()
        .args(["analyze", "some.cdag", "--kernel", "fft(n=8)"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not both"), "{stderr}");
}

#[test]
fn bad_format_value_exits_with_usage_error() {
    let out = repro()
        .args(["analyze", "--format", "yaml"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --format must exit 2");
}

#[test]
fn default_argument_is_all() {
    // No argument behaves like `all`; just check it starts cleanly by
    // running the cheapest single experiment instead of the full sweep.
    let out = repro().arg("sec3").output().expect("repro binary runs");
    assert!(out.status.success(), "sec3 must exit 0");
    assert!(!out.stdout.is_empty(), "sec3 prints a table");
}

#[test]
fn simulate_prints_the_sandwich_table() {
    let out = repro()
        .args([
            "simulate",
            "--kernel",
            "fft(n=8)",
            "--sram-sweep",
            "3:12:3",
            "--threads",
            "2",
        ])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "simulate must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sandwich"), "{stdout}");
    assert!(stdout.contains("fft(n=8)"), "{stdout}");
    // 3:12:3 → four sweep rows, all sandwiched.
    assert_eq!(stdout.matches("yes").count(), 4, "{stdout}");
}

#[test]
fn simulate_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = repro()
            .args([
                "simulate",
                "--kernel",
                "jacobi(n=8,d=1,t=4)",
                "--sram-sweep",
                "4:16:4",
                "--format",
                "json",
                "--threads",
                threads,
            ])
            .output()
            .expect("repro binary runs");
        assert!(out.status.success(), "simulate --format json must exit 0");
        out.stdout
    };
    let base = run("1");
    let body = String::from_utf8_lossy(&base);
    assert!(body.trim().starts_with('{'), "{body}");
    for key in [
        "\"sandwich_holds\":true",
        "\"measured_opt\"",
        "\"measured_lru\"",
    ] {
        assert!(body.contains(key), "missing {key}: {body}");
    }
    for threads in ["2", "4"] {
        assert_eq!(run(threads), base, "JSON differs @ {threads} threads");
    }
}

#[test]
fn simulate_policy_filter_and_errors() {
    let out = repro()
        .args(["simulate", "--kernel", "fft(n=8)", "--policy", "opt"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "simulate --policy opt must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The LRU column (4th) is dashed out when only OPT is measured.
    assert!(
        stdout
            .lines()
            .any(|l| l.split_whitespace().nth(3) == Some("-")
                && l.split_whitespace().nth(2) != Some("-")),
        "{stdout}"
    );

    let out = repro().arg("simulate").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "simulate needs --kernel");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--kernel"), "{stderr}");

    let out = repro()
        .args(["simulate", "--kernel", "fft(n=8)", "--policy", "mru"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --policy must exit 2");

    let out = repro()
        .args(["simulate", "--kernel", "fft(n=8)", "--sram-sweep", "4-16"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --sram-sweep must exit 2");

    let out = repro()
        .args(["simulate", "--kernel", "warp_drive"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown kernel must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("repro list"), "{stderr}");
}

#[test]
fn simulate_machine_prints_the_roofline_table() {
    let out = repro()
        .args(["simulate", "--machine", "IBM BG/Q", "--kernel", "fft(n=8)"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "simulate --machine must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("== repro simulate --machine IBM BG/Q --kernel fft(n=8) =="),
        "{stdout}"
    );
    assert!(stdout.contains("on IBM BG/Q"), "{stdout}");
    assert!(stdout.contains("round-robin wavefront split"), "{stdout}");
    // Every cache boundary gets a row, plus the network row's verdict.
    for needle in ["registers", "LLC", "network"] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }
    assert!(
        stdout.contains("memory-bound")
            || stdout.contains("compute-bound")
            || stdout.contains("network-bound"),
        "a roofline verdict is printed: {stdout}"
    );
}

#[test]
fn simulate_machine_json_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = repro()
            .args([
                "simulate",
                "--machine",
                "all",
                "--kernel",
                "jacobi(n=8,d=1,t=4)",
                "--format",
                "json",
                "--threads",
                threads,
            ])
            .output()
            .expect("repro binary runs");
        assert!(out.status.success(), "machine json must exit 0");
        out.stdout
    };
    let base = run("1");
    let body = String::from_utf8_lossy(&base);
    assert!(body.trim().starts_with("{\"reports\":["), "{body}");
    for key in [
        "\"machine\":\"IBM BG/Q\"",
        "\"machine\":\"Cray XT5\"",
        "\"machine\":\"K computer\"",
        "\"network_verdict\"",
        "\"levels\"",
    ] {
        assert!(body.contains(key), "missing {key}: {body}");
    }
    for threads in ["2", "4"] {
        assert_eq!(
            run(threads),
            base,
            "machine JSON differs @ {threads} threads"
        );
    }
}

#[test]
fn simulate_machine_accepts_a_spec_file() {
    let dir = std::env::temp_dir().join(format!("repro-machine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("toy.machine");
    std::fs::write(
        &path,
        "# a toy machine\n\
         name = Toy\n\
         nodes = 1\n\
         cores_per_node = 2\n\
         gflops_per_core = 1.0\n\
         memory_gb = 1.0\n\
         llc_mb = 0.5\n\
         dram_bandwidth_gbs = 10.0\n\
         network_bandwidth_gbs = 5.0\n\
         word_bytes = 8\n",
    )
    .expect("spec file written");
    let out = repro()
        .args([
            "simulate",
            "--machine",
            path.to_str().expect("utf8 temp path"),
            "--kernel",
            "fft(n=8)",
        ])
        .output()
        .expect("repro binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(out.status.success(), "spec-file machine must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("on Toy"), "{stdout}");
}

#[test]
fn simulate_machine_errors_are_loud() {
    let out = repro()
        .args(["simulate", "--machine", "bogus", "--kernel", "fft(n=8)"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown machine must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown machine 'bogus'"),
        "stderr names the bad machine: {stderr}"
    );
    for entry in ["IBM BG/Q", "Cray XT5", "K computer"] {
        assert!(stderr.contains(entry), "catalog entry {entry}: {stderr}");
    }

    let out = repro()
        .args(["analyze", "--machine", "IBM BG/Q"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "--machine outside simulate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("only applies to 'simulate'"), "{stderr}");

    let out = repro()
        .args([
            "simulate",
            "--machine",
            "IBM BG/Q",
            "--kernel",
            "fft(n=8)",
            "--sram-sweep",
            "4:16:4",
        ])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "--sram-sweep with --machine");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--sram-sweep does not apply"), "{stderr}");

    let out = repro()
        .args([
            "simulate",
            "--machine",
            "IBM BG/Q",
            "--kernel",
            "fft(n=8)",
            "--sram",
            "0",
        ])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "--sram 0 must exit 2");
}
