//! Smoke tests for the `repro` binary's argument dispatch.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_exits_with_usage_error() {
    let out = repro()
        .arg("definitely-not-an-experiment")
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown experiment must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment 'definitely-not-an-experiment'"),
        "stderr names the bad argument: {stderr}"
    );
    // The error must list the valid experiments so the message stays in
    // sync with the dispatch table.
    for exp in [
        "table1",
        "sec3",
        "cg",
        "gmres",
        "jacobi",
        "pebbling",
        "mincut",
        "partition",
        "parallel",
        "figures",
        "all",
    ] {
        assert!(
            stderr.contains(exp),
            "usage message lists '{exp}': {stderr}"
        );
    }
    assert!(out.stdout.is_empty(), "nothing on stdout for bad args");
}

#[test]
fn table1_prints_the_balance_table() {
    let out = repro().arg("table1").output().expect("repro binary runs");
    assert!(out.status.success(), "table1 must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("IBM BG/Q"), "Table 1 lists BG/Q: {stdout}");
    assert!(stdout.contains("Cray XT5"), "Table 1 lists XT5: {stdout}");
}

#[test]
fn mincut_honours_threads_flag() {
    let out = repro()
        .args(["mincut", "--threads", "2"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "mincut --threads 2 must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("engine scaling"),
        "mincut prints the engine scaling table: {stdout}"
    );
    assert!(
        stdout.contains("adaptive"),
        "mincut prints the adaptive ablation row: {stdout}"
    );
}

#[test]
fn bad_threads_value_exits_with_usage_error() {
    let out = repro()
        .args(["mincut", "--threads", "lots"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --threads must exit 2");
}

#[test]
fn default_argument_is_all() {
    // No argument behaves like `all`; just check it starts cleanly by
    // running the cheapest single experiment instead of the full sweep.
    let out = repro().arg("sec3").output().expect("repro binary runs");
    assert!(out.status.success(), "sec3 must exit 0");
    assert!(!out.stdout.is_empty(), "sec3 prints a table");
}
