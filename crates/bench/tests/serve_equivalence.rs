//! The serve ↔ CLI byte-identity contract and the loadgen floors.
//!
//! `dmc-serve` cannot depend on `dmc-bench` (the `repro` binary depends
//! on serve), so the daemon re-implements the CLI's small JSON render
//! paths. This test — in the one crate that sees both — pins them
//! together: for every spec and option combination tried, the HTTP body
//! must equal `analyze_kernel_spec_with(..., Json)` /
//! `simulate_kernel_spec(..., Json)` byte for byte. It also runs the
//! loadgen harness once and asserts the ISSUE's acceptance floors:
//! ≥ 100 req/s against a warm cache, a sane hit rate, zero failures.

use dmc_bench::{analyze_kernel_spec_with, simulate_kernel_spec, AnalyzeOptions, ReportFormat};
use dmc_serve::{Limits, Server, ServerConfig, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn start() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        limits: Limits::default(),
        service: ServiceConfig::default(),
        log: false,
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        server.run().expect("serve loop");
    });
    (addr, handle)
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    let raw = format!(
        "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("recv");
    let status = resp
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .expect("status line");
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn stop(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = post(addr, "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("clean exit");
}

#[test]
fn analyze_bodies_match_the_cli_byte_for_byte() {
    let (addr, handle) = start();
    let cases: [(&str, &str, u64, bool); 4] = [
        ("diamond", "/analyze", 4, false),
        ("fft(n=8)", "/analyze?sram=8", 8, false),
        ("jacobi(n=8,d=1,t=8)", "/analyze?sram=6", 6, false),
        ("ladder(w=6,h=6)", "/analyze?hierarchical=true", 4, true),
    ];
    for (spec, target, sram, hierarchical) in cases {
        let (status, http_body) = post(addr, target, spec);
        assert_eq!(status, 200, "{spec}: {http_body}");
        let cli = analyze_kernel_spec_with(
            spec,
            sram,
            1,
            ReportFormat::Json,
            AnalyzeOptions {
                hierarchical,
                ..AnalyzeOptions::default()
            },
        )
        .expect("CLI path succeeds");
        assert_eq!(
            http_body, cli,
            "{spec}: HTTP body diverged from `repro analyze --format json`"
        );
        // And a second request (cache hit) serves the same bytes.
        let (_, again) = post(addr, target, spec);
        assert_eq!(again, cli, "{spec}: cached body diverged");
    }
    stop(addr, handle);
}

#[test]
fn simulate_bodies_match_the_cli_byte_for_byte() {
    let (addr, handle) = start();
    let (status, http_body) = post(addr, "/simulate", "matmul(n=3)");
    assert_eq!(status, 200, "{http_body}");
    let cli = simulate_kernel_spec("matmul(n=3)", None, None, 1, ReportFormat::Json)
        .expect("CLI path succeeds");
    assert_eq!(http_body, cli, "simulate body diverged from the CLI");
    let (_, lru) = post(addr, "/simulate?policy=lru", "fft(n=8)");
    let cli_lru = simulate_kernel_spec(
        "fft(n=8)",
        None,
        Some(dmc_sim::CachePolicy::Lru),
        1,
        ReportFormat::Json,
    )
    .expect("CLI path succeeds");
    assert_eq!(lru, cli_lru, "policy=lru body diverged from the CLI");
    stop(addr, handle);
}

#[test]
fn simulate_machine_bodies_match_the_cli_byte_for_byte() {
    let (addr, handle) = start();
    // `machine=IBM+BG%2FQ` — the request target cannot hold raw spaces
    // or slashes; the daemon percent-decodes query values.
    let target = "/simulate?machine=IBM+BG%2FQ";
    let (status, http_body) = post(addr, target, "fft(n=8)");
    assert_eq!(status, 200, "{http_body}");
    let cli = dmc_bench::simulate_machine(
        "IBM BG/Q",
        Some("fft(n=8)"),
        dmc_bench::DEFAULT_MACHINE_S1,
        None,
        1,
        ReportFormat::Json,
    )
    .expect("CLI path succeeds");
    assert_eq!(
        http_body, cli,
        "machine body diverged from `repro simulate --machine --format json`"
    );
    // The cache hit serves the same bytes.
    let (_, again) = post(addr, target, "fft(n=8)");
    assert_eq!(again, cli, "cached machine body diverged");
    // The whole-catalog sweep wraps in the same envelope as the CLI.
    let (status, all_body) = post(addr, "/simulate?machine=all&sram=8", "fft(n=8)");
    assert_eq!(status, 200, "{all_body}");
    let cli_all =
        dmc_bench::simulate_machine("all", Some("fft(n=8)"), 8, None, 1, ReportFormat::Json)
            .expect("CLI path succeeds");
    assert_eq!(all_body, cli_all, "machine=all body diverged from the CLI");
    stop(addr, handle);
}

#[test]
fn loadgen_meets_the_acceptance_floors() {
    let r = dmc_bench::loadgen::run(dmc_bench::loadgen::LoadConfig {
        clients: 8,
        requests_per_client: 50,
        workers: 4,
    })
    .expect("loadgen runs");
    assert_eq!(r.failed, 0, "no request may fail:\n{}", r.table);
    assert!(
        r.rps >= 100.0,
        "warm-cache throughput floor (>=100 req/s):\n{}",
        r.table
    );
    assert!(
        r.hit_rate >= 0.70,
        "hit-rate floor (>=70% on the 90/10 mix):\n{}",
        r.table
    );
    // The hot set costs exactly 3 analyses; every other analysis is a
    // cold unique. With 40 cold requests the daemon must not have
    // analyzed more than warmup + cold (i.e. no duplicate work).
    assert!(
        r.analyses_performed <= 3 + 8 * 5,
        "duplicate analyses happened:\n{}",
        r.table
    );
}
