//! Experiment implementations (E1–E15 of DESIGN.md).

use dmc_cdag::cut::min_wavefront;
use dmc_cdag::topo::topological_order;
use dmc_core::analysis::analyze;
use dmc_core::bounds::decompose::untag_inputs;
use dmc_core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc_core::bounds::IoBound;
use dmc_core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc_core::games::optimal::{optimal_io, GameKind};
use dmc_core::parallel::horizontal::ghost_cell_upper_bound;
use dmc_core::partition::construct::{from_trace, greedy_partition};
use dmc_core::partition::validate_rbw;
use dmc_kernels::catalog::Registry;
use dmc_kernels::grid::Stencil;
use dmc_kernels::profile::{cg_profile, gmres_profile, jacobi_profile};
use dmc_kernels::{cg, chains, composite, fft, gmres, jacobi, matmul, outer};
use dmc_machine::specs;
use dmc_machine::MemoryHierarchy;
use dmc_sim::schedule;
use dmc_sim::simulate;
use serde::Serialize;
use std::fmt::Write as _;

/// E1 — Table 1: machine specs and balance parameters.
pub fn table1() -> String {
    let mut out = String::from("== E1 / Table 1: machine balance parameters ==\n");
    out.push_str(&specs::format_table1());
    out.push_str("(paper: BG/Q 0.052 / 0.049; XT5 0.0256 / 0.058)\n");
    out
}

/// E2 — Section 3 composite example: composite I/O vs per-stage sums.
pub fn sec3_composite(ns: &[usize]) -> String {
    let mut out = String::from(
        "== E2 / Section 3: composite (p·qᵀ, r·sᵀ, AB, ΣΣC) ==\n\
         the per-stage accounting explodes while 4N+1 stays linear:\n\
         n     HK-achiev(4N+1)  matmul-stage-LB  per-stage-sum   sum/achievable\n",
    );
    for &n in [8usize, 16, 64, 256, 1024].iter() {
        let s = (4 * n + 4) as u64;
        let achievable = composite::composite_hong_kung_achievable_io(n) as f64;
        let mm = dmc_kernels::matmul::matmul_io_lower_bound(n, s);
        let per_stage = composite::composite_per_stage_io(n, s);
        let _ = writeln!(
            out,
            "{n:<5} {achievable:<16.0} {mm:<16.0} {per_stage:<15.0} {:.1}x",
            per_stage / achievable
        );
    }
    out.push_str(
        "\nexecuted RBW games on the full composite CDAG (S = 4N+4):\n\
         n    RBW-exec   4N+1 (HK, with recomputation)\n",
    );
    for &n in ns {
        let s = 4 * n + 4;
        let g = composite::composite(n);
        let order = topological_order(&g);
        let exec = certified_upper_bound(&g, s, &order, EvictionPolicy::Belady)
            .map(|v| v.to_string())
            .unwrap_or_else(|_| "-".into());
        let _ = writeln!(
            out,
            "{n:<4} {exec:<10} {}",
            composite::composite_hong_kung_achievable_io(n)
        );
    }
    out.push_str(
        "(4N+1 relies on recomputing A/B elements, which the RBW game forbids —\n\
         the gap between the two columns is the price of no-recomputation;\n\
         the composite point stands: per-stage sums vastly over-estimate)\n",
    );
    out
}

/// E3 — Theorem 8: CG vertical bound, automated wavefronts, verdicts.
pub fn cg_experiment() -> String {
    let mut out = String::from("== E3 / Theorem 8 + §5.2.3: Conjugate Gradient ==\n");
    // Automated min-cut wavefronts vs the paper's analytic 2n^d / n^d.
    out.push_str("automated wavefronts (1 iteration):\n");
    out.push_str("n    d   |W(υx)| auto   paper 2n^d   |W(υy)| auto   paper n^d\n");
    for (n, d) in [(4usize, 1usize), (6, 1), (3, 2)] {
        let cgc = cg::cg_cdag(n, d, 1, Stencil::VonNeumann);
        let nd = n.pow(d as u32);
        let wx = min_wavefront(&cgc.cdag, cgc.marks[0].upsilon_x).size;
        let wy = min_wavefront(&cgc.cdag, cgc.marks[0].upsilon_y).size;
        let _ = writeln!(out, "{n:<4} {d:<3} {wx:<14} {:<12} {wy:<14} {}", 2 * nd, nd);
    }
    // The headline ratio and the balance verdicts.
    let _ = writeln!(
        out,
        "\nvertical ratio LB·N/|V| = 6/20 = {:.2} words/FLOP (paper: 0.3)",
        6.0 / 20.0
    );
    out.push_str("verdicts (n = 1000, 3-D, per machine):\n");
    let p = cg_profile(1000, 2048);
    for m in specs::table1_machines() {
        let _ = writeln!(out, "  {}", analyze(&p, &m).row());
    }
    // Horizontal upper bound series (E4).
    out.push_str("\nE4 horizontal UB ratio 6·N^(1/3)/(20n):\n  nodes  ratio\n");
    for nodes in [64usize, 512, 2048, 9408] {
        let ratio = 6.0 * (nodes as f64).powf(1.0 / 3.0) / (20.0 * 1000.0);
        let _ = writeln!(out, "  {nodes:<6} {ratio:.6}");
    }
    // Ghost-cell measurement vs formula on a simulated block run.
    let t = 2;
    let j = jacobi::jacobi_cdag(16, 1, t, Stencil::VonNeumann);
    let procs = 4;
    let h = MemoryHierarchy::new(vec![
        dmc_machine::Level::new("L1", procs, 64),
        dmc_machine::Level::new("mem", procs, u64::MAX),
    ])
    // dmc-lint: allow(s1) -- hand-written two-level hierarchy literal; MemoryHierarchy::new only rejects malformed level lists
    .expect("valid");
    let owner = schedule::jacobi_block_owner(&j, procs);
    let r = simulate(&j.cdag, &h, &schedule::by_level(&j.cdag), &owner);
    let formula = ghost_cell_upper_bound(16, 1, procs, t) * procs as f64;
    let _ = writeln!(
        out,
        "\nsimulated halo words (1-D proxy, n=16, T={t}, {procs} nodes): {} (formula total {:.0})",
        r.total_horizontal(),
        formula
    );
    out
}

/// E5 — Theorem 9: GMRES vertical ratio sweep and verdicts.
pub fn gmres_experiment() -> String {
    let mut out = String::from("== E5 / Theorem 9 + §5.3.3: GMRES ==\n");
    out.push_str("m      6/(m+20)   BG/Q verdict              XT5 verdict\n");
    let machines = specs::table1_machines();
    for m in [1usize, 5, 10, 20, 50, 95, 100, 200] {
        let ratio = gmres::gmres_vertical_ratio(m);
        let p = gmres_profile(1000, m, 2048);
        let v0 = analyze(&p, &machines[0]).vertical.to_string();
        let v1 = analyze(&p, &machines[1]).vertical.to_string();
        let _ = writeln!(out, "{m:<6} {ratio:<10.4} {v0:<25} {v1}");
    }
    // Wavefront soundness on a small instance.
    let g = gmres::gmres_cdag(5, 1, 2, Stencil::VonNeumann);
    let wx = min_wavefront(&g.cdag, g.marks[1].upsilon_x).size;
    let wy = min_wavefront(&g.cdag, g.marks[1].upsilon_y).size;
    let _ = writeln!(
        out,
        "\nwavefronts (n=5, d=1, iter 2): |W(υx)| = {wx} (paper ≥ {}), |W(υy)| = {wy} (paper ≥ {})",
        2 * 5,
        5
    );
    let _ = writeln!(
        out,
        "horizontal UB ratio 6·N^(1/3)/(n·m), n=1000, m=30, N=2048: {:.2e}",
        6.0 * 2048f64.powf(1.0 / 3.0) / (1000.0 * 30.0)
    );
    out
}

/// E6 — Theorem 10: Jacobi bounds, tiling ablation, critical dimensions.
pub fn jacobi_experiment() -> String {
    let mut out = String::from("== E6 / Theorem 10 + §5.4: Jacobi stencils ==\n");
    // Tiling ablation on 1-D Jacobi: DRAM traffic, by-level vs tiled.
    // Write-backs are structural in the CDAG address model (every value is
    // a distinct word, so all n·T results hit DRAM once under any
    // schedule); the schedule-dependent signal is the *read* traffic,
    // which is what the pebble-game bounds (with their R4 delete rule)
    // constrain.
    out.push_str("1-D tiling ablation (n=512, T=64, S1=48 words):\n");
    out.push_str("schedule           DRAM reads   total(+writebacks)  reads vs LB\n");
    let (n, t, s1) = (512usize, 64usize, 48u64);
    let j = jacobi::jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    let h = MemoryHierarchy::new(vec![
        dmc_machine::Level::new("L1", 1, s1),
        dmc_machine::Level::new("mem", 1, u64::MAX),
    ])
    // dmc-lint: allow(s1) -- hand-written two-level hierarchy literal; construction cannot fail for it
    .expect("valid");
    let owner = vec![0usize; j.cdag.num_vertices()];
    let lb = jacobi::jacobi_io_lower_bound(n, 1, t, 1, s1);
    let untiled = simulate(&j.cdag, &h, &schedule::by_level(&j.cdag), &owner);
    let _ = writeln!(
        out,
        "by-level (untiled) {:<12} {:<19} {:.1}x",
        untiled.total_dram_reads(),
        untiled.total_dram_traffic(),
        untiled.total_dram_reads() as f64 / lb
    );
    for w in [8usize, 16, 32] {
        let tiled = simulate(&j.cdag, &h, &schedule::tiled_jacobi_1d(&j, w), &owner);
        let note = if 2 * w + 4 > s1 as usize {
            "  <- 2w+4 > S: thrash cliff"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "tiled w={w:<3}         {:<12} {:<19} {:.1}x{note}",
            tiled.total_dram_reads(),
            tiled.total_dram_traffic(),
            tiled.total_dram_reads() as f64 / lb
        );
    }
    let _ = writeln!(out, "Theorem-10 LB      {lb:.0}");
    // 2-D ablation: the (2S)^{1/2} reuse regime.
    out.push_str("\n2-D tiling ablation (n=48, T=12, Moore stencil, S1=96 words):\n");
    out.push_str("schedule           DRAM reads   reads vs LB\n");
    let (n2, t2, s2) = (48usize, 12usize, 96u64);
    let j2 = jacobi::jacobi_cdag(n2, 2, t2, Stencil::Moore);
    let h2 = MemoryHierarchy::new(vec![
        dmc_machine::Level::new("L1", 1, s2),
        dmc_machine::Level::new("mem", 1, u64::MAX),
    ])
    // dmc-lint: allow(s1) -- hand-written two-level hierarchy literal; construction cannot fail for it
    .expect("valid");
    let owner2 = vec![0usize; j2.cdag.num_vertices()];
    let lb2 = jacobi::jacobi_io_lower_bound(n2, 2, t2, 1, s2);
    let untiled2 = simulate(&j2.cdag, &h2, &schedule::by_level(&j2.cdag), &owner2);
    let _ = writeln!(
        out,
        "by-level (untiled) {:<12} {:.1}x",
        untiled2.total_dram_reads(),
        untiled2.total_dram_reads() as f64 / lb2
    );
    for w in [4usize, 6, 8] {
        let tiled = simulate(&j2.cdag, &h2, &schedule::tiled_jacobi_2d(&j2, w), &owner2);
        let _ = writeln!(
            out,
            "tiled w={w:<3}         {:<12} {:.1}x",
            tiled.total_dram_reads(),
            tiled.total_dram_reads() as f64 / lb2
        );
    }
    let _ = writeln!(out, "Theorem-10 LB      {lb2:.0}");
    // Critical dimensions.
    out.push_str("\ncritical dimension (not bandwidth-bound iff d ≤ d*):\n");
    out.push_str("machine/level             beta     S(words)   d* (ours)  d* (paper rule)\n");
    let bgq = specs::ibm_bgq();
    let rows = [
        ("BG/Q DRAM→L2", bgq.vertical_balance(), bgq.llc_words()),
        ("BG/Q L2→L1 (est.)", 0.23, 16_384),
        (
            "XT5 DRAM→LLC",
            specs::cray_xt5().vertical_balance(),
            specs::cray_xt5().llc_words(),
        ),
    ];
    for (name, beta, s) in rows {
        let ours = jacobi::jacobi_max_unbound_dimension(beta, s);
        let paper = jacobi::jacobi_paper_printed_dimension(s);
        let _ = writeln!(
            out,
            "{name:<25} {beta:<8.4} {s:<10} {ours:<10.2} {paper:.2}"
        );
    }
    out.push_str(
        "(paper prints d ≤ 4.83 for BG/Q DRAM→L2 and d ≤ 96 for L2→L1;\n\
                  see EXPERIMENTS.md on the constant discrepancy — conclusions agree)\n",
    );
    // Verdicts per dimension.
    out.push_str("\nverdicts on BG/Q by dimension (n=1000):\n");
    for d in 1..=6usize {
        let p = jacobi_profile(1000, d, 2048, bgq.llc_words());
        let r = analyze(&p, &bgq);
        let _ = writeln!(
            out,
            "  d={d}: LB/flop {:.5}  UB/flop {:.5}  -> {}",
            // dmc-lint: allow(s1) -- jacobi_profile always sets both per-flop bounds; a None is a broken profile generator, caught by the tier-1 repro tests
            p.vertical_lb_per_flop.expect("set"),
            // dmc-lint: allow(s1) -- jacobi_profile always sets both per-flop bounds; a None is a broken profile generator, caught by the tier-1 repro tests
            p.vertical_ub_per_flop.expect("set"),
            r.vertical
        );
    }
    out
}

/// E10 — Validation sandwich: LB ≤ optimal ≤ heuristic on small CDAGs,
/// every graph built from a catalog spec string via the [`Registry`].
pub fn pebbling_experiment() -> String {
    let mut out = String::from("== E10: validation sandwich on small CDAGs (spec-built) ==\n");
    out.push_str("spec                     S   LB(wavefront)  optimal(RBW)  LRU   Belady\n");
    let registry = Registry::shared();
    let cases: Vec<(&str, dmc_cdag::Cdag, usize)> = [
        ("chain(k=8)", 2),
        ("diamond", 3),
        ("reduction(leaves=8)", 3),
        ("ladder(w=3,h=3)", 4),
        ("two_stage(m=5)", 7),
        ("fft(n=4)", 4),
        ("scan(n=6,kind=seq)", 3),
        ("scan(n=4,kind=sklansky)", 4),
    ]
    .into_iter()
    .map(|(spec, s)| {
        // dmc-lint: allow(s1) -- hardcoded E10 spec strings; parse failure is a broken fixture, caught by the repro_cli tier-1 test
        let parsed = registry.parse(spec).expect("E10 specs are valid");
        (spec, parsed.build(), s)
    })
    .collect();
    for (name, g, s) in cases {
        // Best of the Lemma-2 wavefront bound (on the untagged CDAG, per
        // Theorem 3) and the trivial |I| + |O| bound.
        let wavefront = auto_wavefront_bound(&untag_inputs(&g), s as u64, AnchorStrategy::All);
        let lb = wavefront.value.max(IoBound::trivial(&g).value);
        let opt = optimal_io(&g, s, GameKind::Rbw);
        let order = topological_order(&g);
        let lru = certified_upper_bound(&g, s, &order, EvictionPolicy::Lru).ok();
        let bel = certified_upper_bound(&g, s, &order, EvictionPolicy::Belady).ok();
        let _ = writeln!(
            out,
            "{name:<24} {s:<3} {lb:<14.0} {:<13} {:<5} {}",
            opt.map_or("-".into(), |v: u64| v.to_string()),
            lru.map_or("-".into(), |v| v.to_string()),
            bel.map_or("-".into(), |v| v.to_string()),
        );
        if let Some(o) = opt {
            assert!(lb <= o as f64, "{name}: LB {lb} > optimal {o}");
            if let Some(b) = bel {
                assert!(o <= b, "{name}: optimal {o} > Belady {b}");
            }
        }
    }
    // Matmul analytic bound vs heuristic on a larger instance.
    let g = matmul::matmul(6);
    let order = topological_order(&g);
    for s in [16usize, 32, 64] {
        let analytic = matmul::matmul_io_lower_bound(6, s as u64);
        // dmc-lint: allow(s1) -- S=16 exceeds matmul(6) minimum feasible cache; Belady execution always fits, exercised every repro run
        let ub = certified_upper_bound(&g, s, &order, EvictionPolicy::Belady).expect("fits");
        let _ = writeln!(
            out,
            "matmul(6) S={s:<3}: analytic LB {analytic:.0} <= Belady UB {ub}"
        );
        assert!(analytic <= ub as f64);
    }
    // Outer product exact I/O.
    let n = 6;
    let g = outer::outer_product(n);
    let order = topological_order(&g);
    // dmc-lint: allow(s1) -- S=2n+2 is exactly the outer-product feasibility bound proven in dmc_kernels::outer; exercised every repro run
    let io = certified_upper_bound(&g, 2 * n + 2, &order, EvictionPolicy::Belady).expect("fits");
    let _ = writeln!(
        out,
        "outer({n}) S=2n+2: exec {io} == 2n+n^2 = {}",
        outer::outer_product_exact_io(n)
    );
    out
}

/// E11 — automated min-cut wavefronts vs analytic CG wavefronts, with
/// automatic engine thread count.
pub fn mincut_experiment() -> String {
    mincut_experiment_with(0)
}

/// [`mincut_experiment`] with an explicit wavefront-engine worker count
/// (`0` = `std::thread::available_parallelism`), as set by the `repro`
/// binary's `--threads` flag.
pub fn mincut_experiment_with(threads: usize) -> String {
    use dmc_cdag::engine::WavefrontEngine;
    use dmc_core::bounds::mincut::auto_wavefront_bound_with;
    let mut out = String::from("== E11 / §3.3: automated min-cut wavefronts ==\n");
    out.push_str("CG υx anchors: auto cut vs paper's 2n^d (ours counts r, rr, υx too):\n");
    out.push_str("n    d   auto   paper-2n^d   3n^d+2(exact for our CDAG)\n");
    for (n, d) in [(3usize, 1usize), (5, 1), (8, 1), (3, 2)] {
        let cgc = cg::cg_cdag(n, d, 1, Stencil::VonNeumann);
        let nd = n.pow(d as u32);
        let w = min_wavefront(&cgc.cdag, cgc.marks[0].upsilon_x).size;
        let _ = writeln!(out, "{n:<4} {d:<3} {w:<6} {:<12} {}", 2 * nd, 3 * nd + 2);
    }
    // Anchor-strategy ablation on a ladder.
    out.push_str("\nanchor-strategy ablation, ladder(8,8), S=4 (bound / anchors):\n");
    let g = untag_inputs(&chains::ladder(8, 8));
    for (name, strat) in [
        ("all", AnchorStrategy::All),
        ("per-level", AnchorStrategy::PerLevel),
        ("stride-8", AnchorStrategy::Stride(8)),
        ("adaptive", AnchorStrategy::Adaptive),
    ] {
        let b = auto_wavefront_bound_with(&g, 4, strat, threads);
        let _ = writeln!(out, "  {name:<10} {:<6.0} {}", b.value, b.provenance.note);
    }
    // Engine scaling: the bound must not vary with the worker count; only
    // the wall clock may.
    out.push_str("\nengine scaling, ladder(10,10), All anchors (w^max invariant in threads):\n");
    out.push_str("threads  w^max  evaluated/anchors  ms\n");
    let g = untag_inputs(&chains::ladder(10, 10));
    let anchors: Vec<dmc_cdag::VertexId> = g.vertices().collect();
    let mut counts = vec![1usize, 2, 4, 8];
    if threads != 0 && !counts.contains(&threads) {
        counts.push(threads);
    }
    for t in counts {
        let engine = WavefrontEngine::new(&g).with_threads(t);
        // dmc-lint: allow(d2) -- wall-clock column of the scaling table; the report explicitly documents that only this column may vary between runs
        let t0 = std::time::Instant::now();
        let run = engine.run(&anchors);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let wmax = run.best.as_ref().map_or(0, |w| w.size);
        let _ = writeln!(
            out,
            "{t:<8} {wmax:<6} {:>5}/{:<11} {ms:.1}",
            run.anchors_evaluated, run.anchors_considered
        );
    }
    out
}

/// Output format of [`analyze_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Human-readable provenance-tree report.
    Text,
    /// Compact JSON (the report's `serde::Serialize` rendering).
    Json,
}

/// E13 — the unified bound-analysis pipeline on the seed kernels, with
/// automatic engine/worker thread count.
pub fn analyze_experiment() -> String {
    analyze_experiment_with(0)
}

/// [`analyze_experiment`] with an explicit thread budget (`0` = auto), as
/// set by the `repro` binary's `--threads` flag.
pub fn analyze_experiment_with(threads: usize) -> String {
    use dmc_cdag::builder::disjoint_union;
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    let s = 4u64;
    let mut out = String::from("== E13: unified bound-analysis pipeline (Analyzer) ==\n");
    let _ = writeln!(
        out,
        "portfolio = trivial | wavefront (Lemma 2 + Thm 3) | 2S-counting (Lemma 1), S = {s}:"
    );
    out.push_str("graph                    |V|    comps  best-single  composed  final   via\n");
    // Spec-built rows from the registry plus one hand-built disjoint
    // union (unions of distinct families are not a single catalog entry).
    let registry = Registry::shared();
    let mut graphs: Vec<(String, dmc_cdag::Cdag)> = [
        "diamond",
        "ladder(w=6,h=6)",
        "reduction(leaves=16)",
        "two_stage(m=6)",
        "fft(n=8)",
        "chains(k=3,len=4)",
    ]
    .into_iter()
    .map(|spec| {
        // dmc-lint: allow(s1) -- hardcoded E13 spec strings; parse failure is a broken fixture, caught by the repro_cli tier-1 test
        let parsed = registry.parse(spec).expect("E13 specs are valid");
        (spec.to_string(), parsed.build())
    })
    .collect();
    graphs.push((
        "ladder(8,8)+ladder(7,7)".to_string(),
        disjoint_union(&[chains::ladder(8, 8), chains::ladder(7, 7)]),
    ));
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram: s,
        threads,
        ..AnalyzerConfig::default()
    });
    for (name, g) in &graphs {
        let r = analyzer.analyze(g);
        let best_single = r
            .best_whole_graph
            .as_ref()
            // dmc-lint: allow(s1) -- AnalyzerConfig::default keeps the whole-graph baseline on, so best_whole_graph is always Some
            .expect("baseline on by default")
            .value;
        let composed = r
            .composed
            .as_ref()
            .map_or("-".to_string(), |b| format!("{}", b.value));
        if let Some(c) = &r.composed {
            assert!(
                c.value >= best_single,
                "{name}: Theorem-2 sum {} below whole-graph best {best_single}",
                c.value
            );
        }
        if name.contains('+') {
            // The wavefront-rich union: the Theorem-2 sum must *strictly*
            // beat the best single whole-graph method.
            assert!(
                r.bound.value > best_single,
                "{name}: composed {} does not strictly beat single-method {best_single}",
                r.bound.value
            );
        }
        let _ = writeln!(
            out,
            "{name:<24} {:<6} {:<6} {:<12} {composed:<9} {:<7} {}",
            r.vertices, r.component_count, best_single, r.bound.value, r.bound.method
        );
    }
    out.push_str(
        "(multi-component graphs: the Theorem-2 composition dominates every\n\
         single whole-graph method — Section 3's composite point, automated)\n",
    );
    out
}

/// Analyzes a `.cdag` text file end to end with the unified pipeline —
/// the `repro analyze <file>` backend.
pub fn analyze_file(
    path: &str,
    sram: u64,
    threads: usize,
    format: ReportFormat,
) -> Result<String, String> {
    analyze_file_with(path, sram, threads, format, AnalyzeOptions::default())
}

/// [`analyze_file`] with the full flag set ([`AnalyzeOptions`]); the
/// admission-limit override does not apply to files (nothing is built
/// from parameters) and is ignored here.
pub fn analyze_file_with(
    path: &str,
    sram: u64,
    threads: usize,
    format: ReportFormat,
    opts: AnalyzeOptions,
) -> Result<String, String> {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g = dmc_cdag::textio::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram,
        threads,
        verdicts: true,
        ..AnalyzerConfig::default()
    });
    let report = if opts.hierarchical {
        let hopts = HierarchicalOptions {
            clusters: opts.clusters,
            ..HierarchicalOptions::default()
        };
        analyzer.analyze_hierarchical(&g, &hopts)
    } else {
        analyzer.analyze(&g)
    };
    Ok(match format {
        ReportFormat::Text => {
            let mode = if opts.hierarchical {
                " --hierarchical"
            } else {
                ""
            };
            format!("== repro analyze {path}{mode} ==\n{report}")
        }
        ReportFormat::Json => {
            let mut json = serde::json::to_string(&report);
            json.push('\n');
            json
        }
    })
}

/// The kernel catalog rendered for `repro list`: every registered
/// family with its spec grammar, parameter ranges, and defaults.
pub fn list_catalog() -> String {
    Registry::shared().format_catalog()
}

/// The spec strings of the E16 scale curve: sparse random layered DAGs
/// from 2^20 up past 10^7 vertices (layers × 65536-wide layers, expected
/// in-degree 3). Shared with `benches/hierarchical.rs` so the bench and
/// the table measure the same graphs.
pub const E16_LAYERS: [usize; 4] = [16, 40, 80, 160];

/// Renders one E16 spec string for a layer count.
pub fn e16_spec(layers: usize) -> String {
    format!("random(layers={layers},width=65536,deg=3,seed=7)")
}

/// E16 — the hierarchical scale curve with automatic thread count.
pub fn scale_experiment() -> String {
    scale_experiment_with(0)
}

/// E16 — `analyze --hierarchical` over the sparse random scale curve:
/// 2^20 up to ≥10^7 vertices through build + hierarchical analysis. The
/// structural columns (|V|, |E|, clusters, bound) are deterministic;
/// only the wall-clock columns vary between runs, and those are also
/// recorded machine-readably as `BENCH_scale_points.json` when the
/// `repro` binary enabled snapshots. Not part of `repro all` — the top
/// row alone builds a 10.5M-vertex graph.
pub fn scale_experiment_with(threads: usize) -> String {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
    use serde::json::Value;
    use serde::Serialize as _;
    let mut out =
        String::from("== E16: hierarchical scale curve (sparse random layered DAGs) ==\n");
    out.push_str(
        "spec                                      |V|        |E|        K    bound      build-s  analyze-s\n",
    );
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram: 4,
        threads,
        ..AnalyzerConfig::default()
    });
    let registry = Registry::shared();
    let mut rows: Vec<Value> = Vec::new();
    for layers in E16_LAYERS {
        let spec = e16_spec(layers);
        let parsed = registry
            .parse(&spec)
            // dmc-lint: allow(s1) -- hardcoded E16 spec strings, all under the default 2^24 admission limit; parse failure is a broken fixture
            .expect("E16 specs fit the default admission limit");
        // dmc-lint: allow(d2) -- wall-clock columns of the scale table; the report explicitly documents that only these columns may vary between runs
        let t0 = std::time::Instant::now();
        let g = parsed.build();
        let build_s = t0.elapsed().as_secs_f64();
        // dmc-lint: allow(d2) -- wall-clock columns of the scale table; the report explicitly documents that only these columns may vary between runs
        let t1 = std::time::Instant::now();
        let r = analyzer.analyze_hierarchical(&g, &HierarchicalOptions::default());
        let analyze_s = t1.elapsed().as_secs_f64();
        // dmc-lint: allow(s1) -- analyze_hierarchical on a non-empty graph always attaches the hierarchy level
        let h = r.hierarchy.as_ref().expect("hierarchical report");
        let _ = writeln!(
            out,
            "{spec:<41} {:<10} {:<10} {:<4} {:<10} {build_s:<8.1} {analyze_s:.1}",
            r.vertices, r.edges, h.cluster_count, r.bound.value
        );
        rows.push(Value::object([
            ("spec", spec.to_json()),
            ("vertices", r.vertices.to_json()),
            ("edges", r.edges.to_json()),
            ("clusters", h.cluster_count.to_json()),
            ("bound", r.bound.value.to_json()),
            ("build_s", build_s.to_json()),
            ("analyze_s", analyze_s.to_json()),
        ]));
    }
    crate::snapshot::write("scale_points", &rows);
    out.push_str(
        "(hierarchical mode: Theorem-2 composition over 65536-vertex interval\n\
         clusters + the whole-graph wavefront where admitted; the bound columns\n\
         are deterministic, the timing columns are wall clock)\n",
    );
    out
}

/// Mode switches for [`analyze_kernel_spec_with`] beyond the S/thread
/// knobs — the `repro analyze` flags that change *which* pipeline runs
/// or *what* the catalog admits, not how the result is printed.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Run the hierarchical pipeline (`--hierarchical`).
    pub hierarchical: bool,
    /// Explicit cluster count for hierarchical mode (`--clusters K`;
    /// `None` = one cluster per `DEFAULT_CLUSTER_SIZE` vertices).
    pub clusters: Option<usize>,
    /// Override of the catalog admission limit (`--max-vertices N`;
    /// `None` = [`dmc_kernels::catalog::DEFAULT_MAX_BUILD_VERTICES`]).
    pub max_vertices: Option<u64>,
}

/// Analyzes a catalog kernel spec end to end with the unified pipeline —
/// the `repro analyze --kernel <spec>` backend. A bad spec returns
/// `Err` with the catalog's loud message (the CLI exits 2 on it, like
/// every other usage error).
pub fn analyze_kernel_spec(
    spec: &str,
    sram: u64,
    threads: usize,
    format: ReportFormat,
) -> Result<String, String> {
    analyze_kernel_spec_with(spec, sram, threads, format, AnalyzeOptions::default())
}

/// [`analyze_kernel_spec`] with the full flag set: hierarchical mode,
/// explicit cluster count, and a raised/lowered admission limit.
pub fn analyze_kernel_spec_with(
    spec: &str,
    sram: u64,
    threads: usize,
    format: ReportFormat,
    opts: AnalyzeOptions,
) -> Result<String, String> {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
    use dmc_kernels::catalog::DEFAULT_MAX_BUILD_VERTICES;
    let parsed = Registry::shared()
        .parse_within(
            spec,
            opts.max_vertices.unwrap_or(DEFAULT_MAX_BUILD_VERTICES),
        )
        .map_err(|e| format!("{e}\n(run `repro list` for the catalog)"))?;
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram,
        threads,
        verdicts: true,
        ..AnalyzerConfig::default()
    });
    let report = if opts.hierarchical {
        let hopts = HierarchicalOptions {
            clusters: opts.clusters,
            ..HierarchicalOptions::default()
        };
        analyzer.analyze_kernel_hierarchical(&parsed, &hopts)
    } else {
        analyzer.analyze_kernel(&parsed)
    };
    Ok(match format {
        ReportFormat::Text => {
            // dmc-lint: allow(s1) -- analyze_kernel attaches kernel provenance to every spec-driven report by construction
            let canonical = &report.kernel.as_ref().expect("spec-driven report").spec;
            let mode = if opts.hierarchical {
                " --hierarchical"
            } else {
                ""
            };
            format!("== repro analyze --kernel {canonical}{mode} ==\n{report}")
        }
        ReportFormat::Json => {
            let mut json = serde::json::to_string(&report);
            json.push('\n');
            json
        }
    })
}

/// E14 — the full kernel catalog through the pipeline: every registered
/// family built from its canonical default spec, with the analytic
/// bound rendered next to the certified pipeline bound.
pub fn catalog_experiment() -> String {
    catalog_experiment_with(0)
}

/// [`catalog_experiment`] with an explicit thread budget (`0` = auto),
/// as set by the `repro` binary's `--threads` flag.
pub fn catalog_experiment_with(threads: usize) -> String {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    let s = 4u64;
    let registry = Registry::shared();
    let mut out = format!(
        "== E14: kernel catalog through the pipeline ({} kernels, S = {s}) ==\n",
        registry.len()
    );
    out.push_str(
        "spec                                     |V|    comps  pipeline-LB  analytic-LB  via\n",
    );
    let analyzer = Analyzer::new(AnalyzerConfig {
        sram: s,
        threads,
        ..AnalyzerConfig::default()
    });
    for kernel in registry.iter() {
        // Every registered family must be reachable by name + spec
        // string — `defaults` goes through the same validation as parse.
        let spec = registry
            .defaults(kernel.name())
            // dmc-lint: allow(s1) -- defaults() of a registered kernel resolves by name; failure is registry corruption, caught by catalog tests
            .expect("registered kernels resolve by name");
        let r = analyzer.analyze_kernel(&spec);
        // dmc-lint: allow(s1) -- analyze_spec attaches kernel provenance to every spec-driven report by construction
        let k = r.kernel.as_ref().expect("spec-driven report");
        let analytic = k
            .analytic_lower
            .as_ref()
            .map_or("-".to_string(), |b| format!("{:.1}", b.value));
        let _ = writeln!(
            out,
            "{:<40} {:<6} {:<6} {:<12} {analytic:<12} {}",
            k.spec, r.vertices, r.component_count, r.bound.value, r.bound.method
        );
    }
    out.push_str(
        "(pipeline-LB is the certified RBW bound; analytic-LB is the paper's\n\
         closed form at the same S — reported side by side, never merged)\n",
    );
    out
}

/// The catalog kernels and 3-point S-sweeps the E15 table validates —
/// shared with the repo-level acceptance suite (`tests/validation.rs`)
/// so the table and the tests cannot drift apart.
pub const E15_CASES: [(&str, [u64; 3]); 4] = [
    ("jacobi(n=8,d=1,t=8)", [6, 12, 24]),
    ("matmul(n=4)", [4, 8, 16]),
    ("fft(n=8)", [3, 6, 12]),
    ("composite(n=3)", [4, 8, 16]),
];

/// E15 — the empirical validation sandwich: each kernel's own schedule
/// hook simulated at a 3-point S-sweep, the measured I/O bracketed by
/// the certified pipeline lower bound and the RBW executor upper bound.
pub fn simulate_experiment() -> String {
    simulate_experiment_with(0)
}

/// [`simulate_experiment`] with an explicit thread budget (`0` = auto),
/// as set by `repro all --threads N`.
pub fn simulate_experiment_with(threads: usize) -> String {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    let mut out = String::from(
        "== E15: empirical validation sandwich (measured I/O vs certified bounds) ==\n\
         certified LB <= measured OPT <= measured LRU <= certified UB, per S:\n",
    );
    out.push_str(
        "spec                     S    LB(cert)  OPT(io)  LRU(io)  UB(cert)  ok   schedule\n",
    );
    let analyzer = Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    });
    for (spec, srams) in E15_CASES {
        let r = analyzer
            .validate_spec(spec, &srams, None)
            // dmc-lint: allow(s1) -- hardcoded E15 spec strings; parse failure is a broken fixture, caught by the repro_cli tier-1 test
            .expect("E15 specs are valid");
        for p in &r.points {
            assert_eq!(
                p.sandwich_ok(),
                Some(true),
                "{spec} S={}: sandwich violated: {p:?}",
                p.sram
            );
            let io = |t: &Option<dmc_sim::Trace>| t.as_ref().map_or(0, |t| t.io());
            let _ = writeln!(
                out,
                "{spec:<24} {:<4} {:<9} {:<8} {:<8} {:<9} {:<4} {}",
                p.sram,
                p.certified_lower,
                io(&p.measured_opt),
                io(&p.measured_lru),
                p.certified_upper.unwrap_or(0),
                if p.sandwich_ok() == Some(true) {
                    "yes"
                } else {
                    "NO"
                },
                p.schedule_note,
            );
        }
    }
    out.push_str(
        "(every measured run is itself a valid RBW game, so the bracket is a\n\
         cross-implementation oracle: simulator vs bound machinery)\n",
    );
    out
}

/// Simulates a catalog kernel spec across an S-sweep and renders the
/// validation sandwich — the `repro simulate --kernel <spec>` backend.
///
/// `sweep` is the parsed `lo:hi:step` triple (`None` = a default 3-point
/// sweep starting at the schedule's minimum feasible capacity); `policy`
/// restricts measurement to one cache policy (`None` = both).
pub fn simulate_kernel_spec(
    spec: &str,
    sweep: Option<(u64, u64, u64)>,
    policy: Option<dmc_sim::CachePolicy>,
    threads: usize,
    format: ReportFormat,
) -> Result<String, String> {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    let registry = Registry::shared();
    let parsed = registry
        .parse(spec)
        .map_err(|e| format!("{e}\n(run `repro list` for the catalog)"))?;
    let g = parsed.build();
    let srams: Vec<u64> = match sweep {
        Some((lo, hi, step)) => {
            if lo == 0 || step == 0 || hi < lo {
                return Err(
                    "--sram-sweep needs lo:hi:step with 1 <= lo <= hi and step >= 1".into(),
                );
            }
            let points = (hi - lo) / step + 1;
            if points > 256 {
                return Err(format!(
                    "--sram-sweep spans {points} points (limit 256); widen the step"
                ));
            }
            (lo..=hi).step_by(step as usize).collect()
        }
        None => {
            // Default: three octaves up from the schedule's minimum
            // feasible capacity, so the sweep is always simulatable.
            let required = dmc_sim::simulation::min_feasible_capacity(&g) as u64;
            vec![required, 2 * required, 4 * required]
        }
    };
    let analyzer = Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    });
    let report = analyzer.validate_built(&parsed, &g, &srams, policy);
    Ok(match format {
        ReportFormat::Text => format!("== repro simulate --kernel {} ==\n{report}", report.spec),
        ReportFormat::Json => {
            let mut json = serde::json::to_string(&report);
            json.push('\n');
            json
        }
    })
}

/// The kernels of the E17 machine-roofline table — the same four
/// schedule-bearing families the E15 sandwich validates, so the two
/// tables judge identical DAGs.
pub const E17_KERNELS: [&str; 4] = [
    "jacobi(n=8,d=1,t=8)",
    "matmul(n=4)",
    "fft(n=8)",
    "composite(n=3)",
];

/// Default per-core level-1 capacity (words) for machine simulation when
/// `--sram` is not given.
pub const DEFAULT_MACHINE_S1: u64 = 64;

/// Resolves the `--machine` argument to a list of [`dmc_machine::MachineSpec`]s:
/// a catalog name (case-insensitive), `all`/`catalog` for the whole
/// sweep, or a path to a `key = value` spec file. Unknown names are loud
/// errors listing the valid catalog entries.
pub fn resolve_machines(arg: &str) -> Result<Vec<dmc_machine::MachineSpec>, String> {
    use dmc_machine::specs;
    let trimmed = arg.trim();
    if trimmed.eq_ignore_ascii_case("all") || trimmed.eq_ignore_ascii_case("catalog") {
        return Ok(specs::machine_catalog());
    }
    if let Some(m) = specs::find_machine(trimmed) {
        return Ok(vec![m]);
    }
    if std::path::Path::new(trimmed).exists() {
        let text = std::fs::read_to_string(trimmed)
            .map_err(|e| format!("cannot read machine spec file {trimmed}: {e}"))?;
        return dmc_machine::MachineSpec::parse_spec_text(&text)
            .map(|m| vec![m])
            .map_err(|e| format!("machine spec file {trimmed}: {e}"));
    }
    Err(format!(
        "unknown machine '{trimmed}': not a catalog entry ({}) and no such spec file; \
         use a catalog name, 'all', or a key = value spec file",
        specs::catalog_names().join(", ")
    ))
}

/// Simulates kernels against machine hierarchies and renders the
/// roofline verdict table — the `repro simulate --machine <arg>` backend.
///
/// `machine_arg` is a catalog name, `all`/`catalog`, or a spec-file path
/// (see [`resolve_machines`]); `kernel` restricts the sweep to one
/// catalog spec (`None` = the [`E17_KERNELS`] set); `s1` is the per-core
/// level-1 capacity in words. A single kernel × machine pair in JSON
/// renders the bare [`dmc_core::MachineValidationReport`] (the shape the
/// serve daemon mirrors byte-for-byte); multi-report runs wrap them in a
/// `{"reports": [...]}` envelope.
pub fn simulate_machine(
    machine_arg: &str,
    kernel: Option<&str>,
    s1: u64,
    policy: Option<dmc_sim::CachePolicy>,
    threads: usize,
    format: ReportFormat,
) -> Result<String, String> {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    if s1 == 0 {
        return Err("--sram (the per-core level-1 capacity) must be >= 1".into());
    }
    let machines = resolve_machines(machine_arg)?;
    let kernels: Vec<&str> = match kernel {
        Some(k) => vec![k],
        None => E17_KERNELS.to_vec(),
    };
    let analyzer = Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    });
    let mut reports = Vec::new();
    for spec in &kernels {
        for machine in &machines {
            let r = analyzer
                .validate_machine_spec(spec, machine, s1, policy)
                .map_err(|e| format!("{e}\n(run `repro list` for the catalog)"))?;
            reports.push(r);
        }
    }
    Ok(match format {
        ReportFormat::Text => {
            let mut out = String::new();
            for r in &reports {
                let _ = writeln!(
                    out,
                    "== repro simulate --machine {} --kernel {} ==\n{r}",
                    r.machine, r.spec
                );
            }
            out
        }
        ReportFormat::Json => {
            let mut json = if reports.len() == 1 {
                serde::json::to_string(&reports[0])
            } else {
                serde::json::to_string(&serde::json::Value::object([(
                    "reports",
                    reports.to_json(),
                )]))
            };
            json.push('\n');
            json
        }
    })
}

/// E17 — the machine-hierarchy roofline: every E17 kernel dealt across
/// each catalog machine's cores, measured at every cache boundary, each
/// row a certified sandwich with the Equation-7/8 verdicts.
pub fn machine_experiment() -> String {
    machine_experiment_with(0)
}

/// [`machine_experiment`] with an explicit thread budget (`0` = auto).
pub fn machine_experiment_with(threads: usize) -> String {
    use dmc_core::pipeline::{Analyzer, AnalyzerConfig};
    let mut out = String::from(
        "== E17: machine-hierarchy roofline (per-level sandwich + verdicts) ==\n\
         certified LB <= measured OPT <= measured LRU <= certified UB at every boundary:\n",
    );
    out.push_str(
        "spec                     machine      level       LB(cert)  LRU(io)  UB(cert)  w/F      balance  verdict\n",
    );
    let analyzer = Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    });
    for spec in E17_KERNELS {
        for machine in dmc_machine::specs::machine_catalog() {
            let r = analyzer
                .validate_machine_spec(spec, &machine, DEFAULT_MACHINE_S1, None)
                // dmc-lint: allow(s1) -- hardcoded E17 spec strings; parse failure is a broken fixture, caught by the repro_cli tier-1 test
                .expect("E17 specs are valid");
            assert!(
                r.sandwich_holds(),
                "{spec} on {}: machine sandwich violated:\n{r}",
                machine.name
            );
            for p in &r.levels {
                assert_eq!(
                    p.sandwich_ok(),
                    Some(true),
                    "{spec} on {} level {}: {p:?}",
                    machine.name,
                    p.level
                );
                let io = |t: &Option<dmc_sim::Trace>| t.as_ref().map_or(0, |t| t.io());
                let wpf = io(&p.measured_lru) as f64 / r.flops.max(1.0);
                let balance = p
                    .balance_words_per_flop
                    .map(|b| format!("{b:.4}"))
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "{spec:<24} {:<12} {:<11} {:<9} {:<8} {:<9} {:<8.4} {:<8} {}",
                    r.machine,
                    p.name,
                    p.certified_lower,
                    io(&p.measured_lru),
                    p.certified_upper.unwrap_or(0),
                    wpf,
                    balance,
                    p.verdict,
                );
            }
            let _ = writeln!(
                out,
                "{spec:<24} {:<12} {:<11} {:<9} {:<8} {:<9} {:<8.4} {:<8} {}",
                r.machine,
                "network",
                "-",
                r.remote_words,
                "-",
                r.remote_words_per_flop(),
                format!("{:.4}", r.horizontal_balance),
                r.network_verdict,
            );
        }
    }
    out.push_str(
        "(each row sandwiches the round-robin wavefront split's measured traffic\n\
         between the Lemma-2-aware pipeline LB and the RBW executor UB at that\n\
         boundary's aggregate capacity — Section 5's Table-1 judgement, automated)\n",
    );
    out
}

/// Partition ablation — Theorem 1 construction vs greedy chunking.
pub fn partition_experiment() -> String {
    let mut out = String::from("== partition ablation: Theorem-1 vs greedy ==\n");
    out.push_str("graph        S    q(LRU)  h(thm1)  S·h>=q  h(greedy)  largest-block\n");
    for (name, g) in [
        ("matmul(4)", matmul::matmul(4)),
        ("fft(16)", fft::fft(16)),
        ("ladder(6,6)", chains::ladder(6, 6)),
    ] {
        let order = topological_order(&g);
        for s in [8usize, 16] {
            let Ok(game) =
                dmc_core::games::executor::execute_rbw(&g, s, &order, EvictionPolicy::Lru)
            else {
                continue;
            };
            let tp = from_trace(&g, &game.trace, s);
            assert_eq!(validate_rbw(&g, &tp.partition, 2 * s), Ok(()));
            let greedy = greedy_partition(&g, &order, 2 * s);
            assert_eq!(validate_rbw(&g, &greedy, 2 * s), Ok(()));
            let _ = writeln!(
                out,
                "{name:<12} {s:<4} {:<7} {:<8} {:<7} {:<10} {}",
                game.io,
                tp.intervals,
                (s as u64) * tp.intervals as u64 >= game.io,
                greedy.num_blocks(),
                greedy.largest_block(),
            );
        }
    }
    out
}

/// E12 — parallel accounting: P-RBW executor + simulator vs Theorem 7.
pub fn parallel_experiment() -> String {
    let mut out = String::from("== E12: parallel traffic vs Theorems 5-7 ==\n");
    // Owner-computes P-RBW game on a ladder across 2 nodes.
    let g = chains::ladder(8, 8);
    let h = MemoryHierarchy::new(vec![
        dmc_machine::Level::new("regs", 4, 16),
        dmc_machine::Level::new("mem", 2, 1 << 20),
    ])
    // dmc-lint: allow(s1) -- hand-written two-level hierarchy literal; construction cannot fail for it
    .expect("valid");
    let order = topological_order(&g);
    let owner: Vec<usize> = (0..g.num_vertices()).map(|i| (i / 16) % 4).collect();
    let stats = dmc_core::games::prbw::execute_owner_computes(&g, &h, &order, &owner)
        // dmc-lint: allow(s1) -- the owner-computes executor emits rule-respecting traces by construction; validate rejecting one is an executor bug, caught by prbw tests
        .expect("valid parallel game");
    let _ = writeln!(
        out,
        "P-RBW ladder(8,8), 4 procs / 2 nodes: remote gets = {}, max computes = {}",
        stats.total_horizontal(),
        stats.max_computes()
    );
    // Simulator on block-partitioned Jacobi: halo words vs ghost formula.
    out.push_str("\nblock-partitioned 1-D Jacobi halo traffic (simulated vs formula):\n");
    out.push_str("procs  simulated  ghost-formula(total)\n");
    let (n, t) = (64usize, 4usize);
    let j = jacobi::jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    for procs in [2usize, 4, 8] {
        let h = MemoryHierarchy::new(vec![
            dmc_machine::Level::new("L1", procs, 32),
            dmc_machine::Level::new("mem", procs, u64::MAX),
        ])
        // dmc-lint: allow(s1) -- hand-written two-level hierarchy literal; construction cannot fail for it
        .expect("valid");
        let owner = schedule::jacobi_block_owner(&j, procs);
        let r = simulate(&j.cdag, &h, &schedule::by_level(&j.cdag), &owner);
        let formula = ghost_cell_upper_bound(n, 1, procs, t) * procs as f64;
        let _ = writeln!(out, "{procs:<6} {:<10} {formula:.0}", r.total_horizontal());
    }
    out
}

/// E7/E8/E9 — the schematic figures as executable artefacts.
pub fn figures() -> String {
    let mut out = String::from("== E7 / Figure 1: modeled memory hierarchy (BG/Q-shaped) ==\n");
    let h = specs::ibm_bgq().to_hierarchy(64);
    out.push_str(&h.render_ascii());
    out.push_str("\n== E8 / Figure 2 + §5.1: 1-D heat equation ==\n");
    let p = dmc_solvers::heat::HeatProblem::new(31, 1e-4);
    let u0 = p.sine_initial_condition();
    let steps = 100;
    let u = p.run(&u0, steps);
    let exact = p.analytic_sine_mode(steps as f64 * p.dt);
    let err = dmc_solvers::vector::max_abs_diff(&u, &exact);
    let _ = writeln!(
        out,
        "Crank–Nicolson vs analytic after {steps} steps (n=31, dt=1e-4): max err {err:.2e}"
    );
    let _ = writeln!(out, "mesh ratio a = k/h² = {:.3}", p.mesh_ratio());
    out.push_str("\n== E9 / Figures 3-4: executable CG and GMRES ==\n");
    let op = dmc_solvers::grid::GridOperator::new(10, 3);
    let b = op.generic_rhs();
    let rcg = dmc_solvers::cg::cg(|x, y| op.apply(x, y), &b, &vec![0.0; op.len()], 1e-8, 2000);
    let _ = writeln!(
        out,
        "CG    10^3 Poisson: converged={} iters={} residual={:.2e}",
        rcg.converged, rcg.iterations, rcg.residual_norm
    );
    let rg = dmc_solvers::gmres::gmres(
        |x, y| op.apply(x, y),
        &b,
        &vec![0.0; op.len()],
        30,
        1e-8,
        50,
    );
    let _ = writeln!(
        out,
        "GMRES 10^3 Poisson: converged={} iters={} restarts={} residual={:.2e}",
        rg.converged, rg.iterations, rg.restarts, rg.residual_norm
    );
    out
}

/// Runs every experiment, concatenated — the full paper reproduction.
pub fn run_all() -> String {
    run_all_with(0)
}

/// [`run_all`] with an explicit thread budget for the stages that take
/// one (mincut, analyze), as set by `repro all --threads N`.
pub fn run_all_with(threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&table1());
    out.push('\n');
    out.push_str(&sec3_composite(&[2, 4, 8]));
    out.push('\n');
    out.push_str(&cg_experiment());
    out.push('\n');
    out.push_str(&gmres_experiment());
    out.push('\n');
    out.push_str(&jacobi_experiment());
    out.push('\n');
    out.push_str(&pebbling_experiment());
    out.push('\n');
    out.push_str(&mincut_experiment_with(threads));
    out.push('\n');
    out.push_str(&analyze_experiment_with(threads));
    out.push('\n');
    out.push_str(&catalog_experiment_with(threads));
    out.push('\n');
    out.push_str(&simulate_experiment_with(threads));
    out.push('\n');
    out.push_str(&machine_experiment_with(threads));
    out.push('\n');
    out.push_str(&partition_experiment());
    out.push('\n');
    out.push_str(&parallel_experiment());
    out.push('\n');
    out.push_str(&figures());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_paper_values() {
        let t = table1();
        assert!(t.contains("IBM BG/Q"));
        assert!(t.contains("0.0520"));
        assert!(t.contains("Cray XT5"));
        assert!(t.contains("0.0256"));
    }

    #[test]
    fn gmres_experiment_flips_verdict() {
        let t = gmres_experiment();
        assert!(t.contains("bandwidth-bound"));
        assert!(t.contains("inconclusive"));
        assert!(t.contains("0.0500"));
    }

    #[test]
    fn figures_report_convergence() {
        let t = figures();
        assert!(t.contains("converged=true"));
        assert!(t.contains("interconnection network"));
        assert!(t.contains("max err"));
    }

    #[test]
    fn mincut_experiment_matches_exact_constant() {
        let t = mincut_experiment();
        // The 3n^d+2 column equals the auto column on every row.
        assert!(t.contains("3n^d+2"));
        for line in t.lines().skip(3).take(4) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[2], cols[4], "auto != exact in {line:?}");
        }
    }

    #[test]
    fn mincut_scaling_bound_invariant_in_threads() {
        let t = mincut_experiment_with(3);
        let header = t
            .lines()
            .position(|l| l.starts_with("threads"))
            .expect("scaling table present");
        let wmaxes: Vec<&str> = t
            .lines()
            .skip(header + 1)
            .take_while(|l| !l.is_empty())
            .map(|l| l.split_whitespace().nth(1).expect("w^max column"))
            .collect();
        assert!(wmaxes.len() >= 5, "1/2/4/8 plus the requested 3: {t}");
        assert!(
            wmaxes.iter().all(|w| w == &wmaxes[0]),
            "w^max varies with thread count: {wmaxes:?}"
        );
    }

    #[test]
    fn catalog_experiment_covers_every_registered_kernel() {
        let t = catalog_experiment_with(1);
        for name in Registry::shared().names() {
            assert!(t.contains(name), "{name} missing from catalog table:\n{t}");
        }
    }

    #[test]
    fn list_catalog_prints_ranges_and_defaults() {
        let t = list_catalog();
        assert!(t.contains("spec grammar"), "{t}");
        assert!(t.contains("jacobi("), "{t}");
        assert!(t.contains("star|box"), "{t}");
    }

    #[test]
    fn simulate_experiment_reports_the_sandwich_for_all_cases() {
        let t = simulate_experiment_with(1);
        for (spec, srams) in E15_CASES {
            assert!(t.contains(spec), "{spec} missing:\n{t}");
            for s in srams {
                assert!(
                    t.lines().any(|l| {
                        l.starts_with(spec)
                            && l.split_whitespace().nth(1) == Some(&s.to_string())
                            && l.contains("yes")
                    }),
                    "{spec} S={s} row missing or not ok:\n{t}"
                );
            }
        }
    }

    #[test]
    fn simulate_kernel_spec_rejects_bad_input_loudly() {
        let err =
            simulate_kernel_spec("warp_drive", None, None, 1, ReportFormat::Text).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        let err = simulate_kernel_spec("fft(n=8)", Some((8, 4, 1)), None, 1, ReportFormat::Text)
            .unwrap_err();
        assert!(err.contains("lo:hi:step"), "{err}");
        let err = simulate_kernel_spec(
            "fft(n=8)",
            Some((1, 10_000, 1)),
            None,
            1,
            ReportFormat::Text,
        )
        .unwrap_err();
        assert!(err.contains("limit 256"), "{err}");
    }

    #[test]
    fn simulate_kernel_spec_default_sweep_is_feasible() {
        let t = simulate_kernel_spec("matmul(n=3)", None, None, 1, ReportFormat::Text)
            .expect("valid spec");
        assert!(
            !t.contains("skipped"),
            "default sweep must be feasible:\n{t}"
        );
        assert!(t.contains("yes"), "{t}");
    }

    #[test]
    fn analyze_kernel_spec_rejects_bad_specs_loudly() {
        let err = analyze_kernel_spec("warp_drive(n=4)", 4, 1, ReportFormat::Text).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
        assert!(err.contains("repro list"), "{err}");
    }

    #[test]
    fn parallel_experiment_within_formula() {
        let t = parallel_experiment();
        assert!(t.contains("remote gets"));
        assert!(t.contains("ghost-formula"));
    }
}
