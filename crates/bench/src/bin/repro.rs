//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! repro [table1|sec3|cg|gmres|jacobi|pebbling|mincut|partition|parallel|figures|all]
//!       [--threads N]
//! ```
//!
//! `--threads N` pins the wavefront-engine worker count for the `mincut`
//! experiment (`0` or omitted = `std::thread::available_parallelism`).

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "{msg}; expected one of: table1 sec3 cg gmres \
         jacobi pebbling mincut partition parallel figures all \
         (plus optional --threads N)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut experiment: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--threads" {
            i += 1;
            threads = args
                .get(i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage_error("--threads needs a non-negative integer"));
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = v
                .parse()
                .unwrap_or_else(|_| usage_error("--threads needs a non-negative integer"));
        } else if experiment.is_none() && !a.starts_with('-') {
            experiment = Some(a.clone());
        } else {
            usage_error(&format!("unknown experiment '{a}'"));
        }
        i += 1;
    }
    let arg = experiment.unwrap_or_else(|| "all".to_string());
    let out = match arg.as_str() {
        "table1" => dmc_bench::table1(),
        "sec3" => dmc_bench::sec3_composite(&[2, 4, 8]),
        "cg" => dmc_bench::cg_experiment(),
        "gmres" => dmc_bench::gmres_experiment(),
        "jacobi" => dmc_bench::jacobi_experiment(),
        "pebbling" | "validate" => dmc_bench::pebbling_experiment(),
        "mincut" => dmc_bench::mincut_experiment_with(threads),
        "partition" => dmc_bench::partition_experiment(),
        "parallel" => dmc_bench::parallel_experiment(),
        "figures" | "fig1" | "fig2" | "solvers" => dmc_bench::figures(),
        "all" => dmc_bench::run_all(),
        other => usage_error(&format!("unknown experiment '{other}'")),
    };
    print!("{out}");
}
