//! `repro` — regenerates every table and figure of the paper's evaluation,
//! and runs the unified bound-analysis pipeline on arbitrary `.cdag` files
//! or kernel-catalog specs.
//!
//! Usage:
//! ```text
//! repro [table1|sec3|cg|gmres|jacobi|pebbling|mincut|analyze|catalog|simulate|scale|partition|parallel|figures|all]
//!       [--threads N]
//! repro list
//! repro analyze <file.cdag> [--sram S] [--threads N] [--format text|json]
//!               [--hierarchical [--clusters K]]
//! repro analyze --kernel '<spec>' [--sram S] [--threads N] [--format text|json]
//!               [--hierarchical [--clusters K]] [--max-vertices N]
//! repro simulate --kernel '<spec>' [--sram-sweep lo:hi:step] [--policy lru|opt]
//!                [--threads N] [--format text|json]
//! repro simulate --machine <name|'all'|spec-file> [--kernel '<spec>'] [--sram S1]
//!                [--policy lru|opt] [--threads N] [--format text|json]
//! repro lint [--format text|json] [--rules d1,d2,...]
//! repro serve [--addr HOST:PORT] [--workers N] [--threads N]
//!             [--cache-entries K] [--cache-bytes B] [--max-vertices N]
//! repro loadgen [--workers N]
//! ```
//!
//! `--threads N` pins the worker count for the wavefront engine and the
//! pipeline's component fan-out (`0` or omitted =
//! `std::thread::available_parallelism`). `analyze` without a file prints
//! the pipeline table over the seed kernels; with a `.cdag` file or a
//! `--kernel` spec (e.g. `jacobi(n=8,d=2,t=4)` — see `repro list` for the
//! catalog) it reports the full provenance tree (`--format json` for
//! machine-readable output). `--hierarchical` switches that report to
//! the partition → per-cluster portfolio → Theorem-2 composition
//! pipeline (`--clusters K` pins the cluster count), `--max-vertices N`
//! raises or lowers the catalog's build-admission limit, and `scale`
//! runs the E16 curve of sparse random DAGs from 2^20 past 10^7
//! vertices through the hierarchical mode. The binary also records
//! wall-clock perf snapshots as `BENCH_<experiment>.json` (in
//! `$DMC_BENCH_DIR`, default the current directory). `simulate` executes the kernel's schedule
//! hook on the cache simulator across the S-sweep and sandwiches the
//! measured I/O between the certified lower and upper bounds (the sweep
//! defaults to three octaves up from the schedule's minimum feasible S;
//! `--policy` restricts measurement to one eviction policy). `simulate
//! --machine` instead judges kernels against a *machine*: the DAG is dealt
//! round-robin across the node's cores and measured at every boundary of
//! the machine's register/LLC/DRAM hierarchy, each level a certified
//! sandwich plus the Equation-7/8 roofline verdicts (`<name>` is a catalog
//! entry — see the E1 table — `all` sweeps the catalog, any other value is
//! read as a `key = value` spec file; `--sram S1` sets the per-core
//! level-1 words, default 64; omitting `--kernel` sweeps the E17 set, and
//! the snapshot lands in `BENCH_machine.json`). `lint` runs
//! the `dmc-lint` determinism/soundness pass over the workspace sources
//! (exit 0 clean, 1 on violations, 2 on unused waivers; `--rules`
//! restricts to a comma-separated rule subset, e.g. `d1,s1`). `serve`
//! starts the bounds-as-a-service daemon (`dmc-serve`): the analysis
//! pipeline behind HTTP with a content-addressed result cache
//! (`--cache-entries`/`--cache-bytes` bound it, `--workers` sizes the
//! handler pool, `--max-vertices` the admission limit; stop it with
//! `POST /shutdown`). `loadgen` hammers a fresh in-process daemon with
//! a hot/cold client mix and records the throughput/latency/hit-rate
//! numbers as `BENCH_serve.json`.

use dmc_bench::ReportFormat;
use dmc_sim::CachePolicy;

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "{msg}; expected one of: table1 sec3 cg gmres \
         jacobi pebbling mincut analyze catalog simulate scale lint list partition parallel \
         figures serve loadgen all (plus optional --threads N; analyze also takes \
         <file.cdag> or --kernel '<spec>', --sram S, --format text|json, \
         --hierarchical, --clusters K, --max-vertices N; \
         simulate takes --kernel '<spec>', --sram-sweep lo:hi:step, \
         --policy lru|opt, --format text|json, or --machine \
         <name|'all'|spec-file> with --sram S1; \
         lint takes --format text|json and --rules d1,d2,d3,s1,s2; \
         serve takes --addr HOST:PORT, --workers N, --threads N, \
         --cache-entries K, --cache-bytes B, --max-vertices N; \
         loadgen takes --workers N)"
    );
    std::process::exit(2);
}

struct Args {
    experiment: Option<String>,
    file: Option<String>,
    kernel: Option<String>,
    threads: Option<usize>,
    /// `--sram` / `--format` / `--sram-sweep` / `--policy` stay `None`
    /// unless given explicitly, so the dispatcher can reject them for
    /// experiments they do not apply to instead of silently ignoring
    /// them.
    sram: Option<u64>,
    format: Option<ReportFormat>,
    sram_sweep: Option<(u64, u64, u64)>,
    policy: Option<CachePolicy>,
    machine: Option<String>,
    rules: Option<String>,
    hierarchical: bool,
    clusters: Option<usize>,
    max_vertices: Option<u64>,
    addr: Option<String>,
    workers: Option<usize>,
    cache_entries: Option<usize>,
    cache_bytes: Option<usize>,
}

fn parse_sweep(raw: &str) -> (u64, u64, u64) {
    let parts: Vec<Option<u64>> = raw.split(':').map(|p| p.parse().ok()).collect();
    match parts.as_slice() {
        [Some(lo), Some(hi), Some(step)] => (*lo, *hi, *step),
        _ => usage_error("--sram-sweep needs lo:hi:step (three positive integers)"),
    }
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        experiment: None,
        file: None,
        kernel: None,
        threads: None,
        sram: None,
        format: None,
        sram_sweep: None,
        policy: None,
        machine: None,
        rules: None,
        hierarchical: false,
        clusters: None,
        max_vertices: None,
        addr: None,
        workers: None,
        cache_entries: None,
        cache_bytes: None,
    };
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (a.clone(), None),
        };
        match flag.as_str() {
            "--threads" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--threads"));
                parsed.threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_error("--threads needs a non-negative integer")),
                );
            }
            "--sram" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--sram"));
                parsed.sram =
                    Some(v.parse().ok().filter(|&s| s >= 1).unwrap_or_else(|| {
                        usage_error("--sram needs a positive integer word count")
                    }));
            }
            "--format" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--format"));
                parsed.format = Some(match v.as_str() {
                    "text" => ReportFormat::Text,
                    "json" => ReportFormat::Json,
                    _ => usage_error("--format must be 'text' or 'json'"),
                });
            }
            "--kernel" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--kernel"));
                parsed.kernel = Some(v);
            }
            "--sram-sweep" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--sram-sweep"));
                parsed.sram_sweep = Some(parse_sweep(&v));
            }
            "--policy" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--policy"));
                parsed.policy = Some(match v.as_str() {
                    "lru" => CachePolicy::Lru,
                    "opt" => CachePolicy::Opt,
                    _ => usage_error("--policy must be 'lru' or 'opt'"),
                });
            }
            "--machine" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--machine"));
                parsed.machine = Some(v);
            }
            "--rules" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--rules"));
                parsed.rules = Some(v);
            }
            "--hierarchical" => {
                if inline.is_some() {
                    usage_error("--hierarchical takes no value");
                }
                parsed.hierarchical = true;
            }
            "--clusters" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--clusters"));
                parsed.clusters = Some(v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
                    usage_error("--clusters needs a positive integer cluster count")
                }));
            }
            "--max-vertices" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--max-vertices"));
                parsed.max_vertices =
                    Some(v.parse().ok().filter(|&m| m >= 1).unwrap_or_else(|| {
                        usage_error("--max-vertices needs a positive integer vertex count")
                    }));
            }
            "--addr" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--addr"));
                parsed.addr = Some(v);
            }
            "--workers" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--workers"));
                parsed.workers = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_error("--workers needs a non-negative integer")),
                );
            }
            "--cache-entries" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--cache-entries"));
                parsed.cache_entries =
                    Some(v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
                        usage_error("--cache-entries needs a positive integer entry count")
                    }));
            }
            "--cache-bytes" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--cache-bytes"));
                parsed.cache_bytes =
                    Some(v.parse().ok().filter(|&b| b >= 1).unwrap_or_else(|| {
                        usage_error("--cache-bytes needs a positive integer byte count")
                    }));
            }
            _ if a.starts_with('-') => usage_error(&format!("unknown flag '{a}'")),
            _ if parsed.experiment.is_none() => parsed.experiment = Some(a.clone()),
            _ if parsed.experiment.as_deref() == Some("analyze") && parsed.file.is_none() => {
                parsed.file = Some(a.clone());
            }
            _ => usage_error(&format!("unknown experiment '{a}'")),
        }
        i += 1;
    }
    parsed
}

/// Runs the `dmc-lint` static-analysis pass over the enclosing workspace
/// and exits with the report's exit code (0 clean, 1 violations, 2 unused
/// waivers). The workspace root is located by walking up from the current
/// directory, so `repro lint` works from any subdirectory of the repo.
fn run_lint(rules: Option<&str>, format: ReportFormat) -> ! {
    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("cannot determine current directory: {e}");
        std::process::exit(2);
    });
    let root = dmc_lint::find_workspace_root(&cwd).unwrap_or_else(|| {
        eprintln!("no Cargo workspace found above {}", cwd.display());
        std::process::exit(2);
    });
    match dmc_lint::lint_workspace(&root, rules) {
        Ok(report) => {
            match format {
                ReportFormat::Text => print!("{}", report.render_text()),
                ReportFormat::Json => println!("{}", serde::json::to_string(&report)),
            }
            std::process::exit(report.exit_code());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Boots the `dmc-serve` daemon from the CLI flags and blocks until
/// `POST /shutdown`; exits 0 on a clean drain, 1 on a socket error.
fn run_serve(args: &Args, threads: usize) -> ! {
    use dmc_serve::{CacheConfig, Limits, Server, ServerConfig, ServiceConfig};
    let defaults = CacheConfig::default();
    let config = ServerConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: args.workers.unwrap_or(0),
        limits: Limits::default(),
        service: ServiceConfig {
            max_vertices: args
                .max_vertices
                .unwrap_or(dmc_kernels::catalog::DEFAULT_MAX_BUILD_VERTICES),
            threads,
            cache: CacheConfig {
                max_entries: args.cache_entries.unwrap_or(defaults.max_entries),
                max_bytes: args.cache_bytes.unwrap_or(defaults.max_bytes),
            },
        },
        log: true,
    };
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("cannot bind serve daemon: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[serve] listening on http://{} (POST /shutdown to stop)",
        server.local_addr()
    );
    match server.run() {
        Ok(summary) => {
            eprintln!(
                "[serve] drained: {} requests handled, {} dead connections",
                summary.requests, summary.dead_connections
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("[serve] accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Perf-trajectory snapshots (`BENCH_*.json` in `$DMC_BENCH_DIR` or
    // the current directory) are enabled for the binary only — library
    // users, unit tests, and criterion benches never write them.
    dmc_bench::snapshot::enable_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&args);
    let arg = args.experiment.clone().unwrap_or_else(|| "all".to_string());
    // Flags an experiment would silently drop are rejected loudly:
    // `--kernel`/`--sram`/`--format` only shape the analyze/simulate
    // reports, `--sram-sweep`/`--policy` only the simulate sweep, and
    // `--threads` only drives the threaded stages.
    let analyzing_input = arg == "analyze" && (args.file.is_some() || args.kernel.is_some());
    let simulating = arg == "simulate";
    if args.kernel.is_some() && !(arg == "analyze" || simulating) {
        usage_error("--kernel only applies to 'analyze' and 'simulate'");
    }
    if args.kernel.is_some() && args.file.is_some() {
        usage_error("give either a <file.cdag> or --kernel '<spec>', not both");
    }
    if simulating && args.kernel.is_none() && args.machine.is_none() {
        usage_error("simulate needs --kernel '<spec>' or --machine <name> (see `repro list`)");
    }
    if args.machine.is_some() && !simulating {
        usage_error("--machine only applies to 'simulate'");
    }
    let machine_sim = simulating && args.machine.is_some();
    if args.sram.is_some() && !(analyzing_input || machine_sim) {
        usage_error(
            "--sram only applies to 'analyze <file.cdag>', 'analyze --kernel', \
             and 'simulate --machine' (the per-core S1)",
        );
    }
    if args.sram_sweep.is_some() && machine_sim {
        usage_error("--sram-sweep does not apply to 'simulate --machine'; use --sram to set S1");
    }
    let linting = arg == "lint";
    if args.format.is_some() && !(analyzing_input || simulating || linting) {
        usage_error(
            "--format only applies to 'analyze <file.cdag>', 'analyze --kernel', \
             'simulate', and 'lint'",
        );
    }
    if args.rules.is_some() && !linting {
        usage_error("--rules only applies to 'lint'");
    }
    if (args.sram_sweep.is_some() || args.policy.is_some()) && !simulating {
        usage_error("--sram-sweep and --policy only apply to 'simulate'");
    }
    if args.hierarchical && !analyzing_input {
        usage_error("--hierarchical only applies to 'analyze <file.cdag>' or 'analyze --kernel'");
    }
    if args.clusters.is_some() && !args.hierarchical {
        usage_error("--clusters needs --hierarchical");
    }
    let serving = arg == "serve";
    let loadgenning = arg == "loadgen";
    if args.max_vertices.is_some() && !(arg == "analyze" && args.kernel.is_some()) && !serving {
        usage_error(
            "--max-vertices only applies to 'analyze --kernel' and 'serve' (the admission limit)",
        );
    }
    if args.addr.is_some() && !serving {
        usage_error("--addr only applies to 'serve'");
    }
    if args.workers.is_some() && !(serving || loadgenning) {
        usage_error("--workers only applies to 'serve' and 'loadgen'");
    }
    if (args.cache_entries.is_some() || args.cache_bytes.is_some()) && !serving {
        usage_error("--cache-entries and --cache-bytes only apply to 'serve'");
    }
    if args.threads.is_some()
        && !matches!(
            arg.as_str(),
            "mincut" | "analyze" | "catalog" | "simulate" | "scale" | "serve" | "all"
        )
    {
        usage_error(
            "--threads only applies to 'mincut', 'analyze', 'catalog', 'simulate', 'scale', 'serve', and 'all'",
        );
    }
    let threads = args.threads.unwrap_or(0);
    if serving {
        // `serve` owns its lifecycle (it blocks until `POST /shutdown`),
        // so like `lint` it never enters the snapshot-timed dispatcher.
        run_serve(&args, threads);
    }
    if loadgenning {
        // `loadgen` writes its own `BENCH_serve.json`; keep it out of
        // the timed dispatcher so no stray `BENCH_loadgen.json` appears.
        match dmc_bench::loadgen::loadgen_experiment(args.workers.unwrap_or(0)) {
            Ok(table) => {
                print!("{table}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if linting {
        // `lint` owns the process exit code (0 clean / 1 violations /
        // 2 stale waivers), so it never falls through to the generic
        // experiment dispatcher below.
        run_lint(
            args.rules.as_deref(),
            args.format.unwrap_or(ReportFormat::Text),
        );
    }
    // `simulate --machine` gets its own perf-snapshot series
    // (`BENCH_machine.json`) so the machine sweep's trajectory is
    // tracked separately from the single-cache sweep's.
    let snap_name = if arg == "simulate" && args.machine.is_some() {
        "machine"
    } else {
        arg.as_str()
    };
    let out = dmc_bench::snapshot::timed(snap_name, threads, || match arg.as_str() {
        "table1" => dmc_bench::table1(),
        "sec3" => dmc_bench::sec3_composite(&[2, 4, 8]),
        "cg" => dmc_bench::cg_experiment(),
        "gmres" => dmc_bench::gmres_experiment(),
        "jacobi" => dmc_bench::jacobi_experiment(),
        "pebbling" | "validate" => dmc_bench::pebbling_experiment(),
        "mincut" => dmc_bench::mincut_experiment_with(threads),
        "analyze" => {
            let sram = args.sram.unwrap_or(4);
            let format = args.format.unwrap_or(ReportFormat::Text);
            let opts = dmc_bench::AnalyzeOptions {
                hierarchical: args.hierarchical,
                clusters: args.clusters,
                max_vertices: args.max_vertices,
            };
            match (&args.kernel, &args.file) {
                (Some(spec), None) => {
                    dmc_bench::analyze_kernel_spec_with(spec, sram, threads, format, opts)
                        .unwrap_or_else(|e| {
                            // Bad specs are usage errors: loud message, exit 2.
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                }
                (None, Some(path)) => dmc_bench::analyze_file_with(
                    path, sram, threads, format, opts,
                )
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                }),
                _ => dmc_bench::analyze_experiment_with(threads),
            }
        }
        "catalog" => dmc_bench::catalog_experiment_with(threads),
        "simulate" => {
            let format = args.format.unwrap_or(ReportFormat::Text);
            if let Some(machine) = args.machine.as_deref() {
                dmc_bench::simulate_machine(
                    machine,
                    args.kernel.as_deref(),
                    args.sram.unwrap_or(dmc_bench::DEFAULT_MACHINE_S1),
                    args.policy,
                    threads,
                    format,
                )
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            } else {
                // Checked above, but routed through the usage error rather
                // than a panic so the path stays panic-free (lint rule S1).
                let Some(spec) = args.kernel.as_deref() else {
                    usage_error("simulate needs --kernel '<spec>' (see `repro list`)");
                };
                dmc_bench::simulate_kernel_spec(spec, args.sram_sweep, args.policy, threads, format)
                    .unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    })
            }
        }
        "scale" => dmc_bench::scale_experiment_with(threads),
        "list" => dmc_bench::list_catalog(),
        "partition" => dmc_bench::partition_experiment(),
        "parallel" => dmc_bench::parallel_experiment(),
        "figures" | "fig1" | "fig2" | "solvers" => dmc_bench::figures(),
        "all" => dmc_bench::run_all_with(threads),
        other => usage_error(&format!("unknown experiment '{other}'")),
    });
    print!("{out}");
}
