//! `repro` — regenerates every table and figure of the paper's evaluation,
//! and runs the unified bound-analysis pipeline on arbitrary `.cdag` files
//! or kernel-catalog specs.
//!
//! Usage:
//! ```text
//! repro [table1|sec3|cg|gmres|jacobi|pebbling|mincut|analyze|catalog|simulate|scale|partition|parallel|figures|all]
//!       [--threads N]
//! repro list
//! repro analyze <file.cdag> [--sram S] [--threads N] [--format text|json]
//!               [--hierarchical [--clusters K]]
//! repro analyze --kernel '<spec>' [--sram S] [--threads N] [--format text|json]
//!               [--hierarchical [--clusters K]] [--max-vertices N]
//! repro simulate --kernel '<spec>' [--sram-sweep lo:hi:step] [--policy lru|opt]
//!                [--threads N] [--format text|json]
//! repro lint [--format text|json] [--rules d1,d2,...]
//! ```
//!
//! `--threads N` pins the worker count for the wavefront engine and the
//! pipeline's component fan-out (`0` or omitted =
//! `std::thread::available_parallelism`). `analyze` without a file prints
//! the pipeline table over the seed kernels; with a `.cdag` file or a
//! `--kernel` spec (e.g. `jacobi(n=8,d=2,t=4)` — see `repro list` for the
//! catalog) it reports the full provenance tree (`--format json` for
//! machine-readable output). `--hierarchical` switches that report to
//! the partition → per-cluster portfolio → Theorem-2 composition
//! pipeline (`--clusters K` pins the cluster count), `--max-vertices N`
//! raises or lowers the catalog's build-admission limit, and `scale`
//! runs the E16 curve of sparse random DAGs from 2^20 past 10^7
//! vertices through the hierarchical mode. The binary also records
//! wall-clock perf snapshots as `BENCH_<experiment>.json` (in
//! `$DMC_BENCH_DIR`, default the current directory). `simulate` executes the kernel's schedule
//! hook on the cache simulator across the S-sweep and sandwiches the
//! measured I/O between the certified lower and upper bounds (the sweep
//! defaults to three octaves up from the schedule's minimum feasible S;
//! `--policy` restricts measurement to one eviction policy). `lint` runs
//! the `dmc-lint` determinism/soundness pass over the workspace sources
//! (exit 0 clean, 1 on violations, 2 on unused waivers; `--rules`
//! restricts to a comma-separated rule subset, e.g. `d1,s1`).

use dmc_bench::ReportFormat;
use dmc_sim::CachePolicy;

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "{msg}; expected one of: table1 sec3 cg gmres \
         jacobi pebbling mincut analyze catalog simulate scale lint list partition parallel \
         figures all (plus optional --threads N; analyze also takes \
         <file.cdag> or --kernel '<spec>', --sram S, --format text|json, \
         --hierarchical, --clusters K, --max-vertices N; \
         simulate takes --kernel '<spec>', --sram-sweep lo:hi:step, \
         --policy lru|opt, --format text|json; \
         lint takes --format text|json and --rules d1,d2,d3,s1,s2)"
    );
    std::process::exit(2);
}

struct Args {
    experiment: Option<String>,
    file: Option<String>,
    kernel: Option<String>,
    threads: Option<usize>,
    /// `--sram` / `--format` / `--sram-sweep` / `--policy` stay `None`
    /// unless given explicitly, so the dispatcher can reject them for
    /// experiments they do not apply to instead of silently ignoring
    /// them.
    sram: Option<u64>,
    format: Option<ReportFormat>,
    sram_sweep: Option<(u64, u64, u64)>,
    policy: Option<CachePolicy>,
    rules: Option<String>,
    hierarchical: bool,
    clusters: Option<usize>,
    max_vertices: Option<u64>,
}

fn parse_sweep(raw: &str) -> (u64, u64, u64) {
    let parts: Vec<Option<u64>> = raw.split(':').map(|p| p.parse().ok()).collect();
    match parts.as_slice() {
        [Some(lo), Some(hi), Some(step)] => (*lo, *hi, *step),
        _ => usage_error("--sram-sweep needs lo:hi:step (three positive integers)"),
    }
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        experiment: None,
        file: None,
        kernel: None,
        threads: None,
        sram: None,
        format: None,
        sram_sweep: None,
        policy: None,
        rules: None,
        hierarchical: false,
        clusters: None,
        max_vertices: None,
    };
    let take_value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (a.clone(), None),
        };
        match flag.as_str() {
            "--threads" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--threads"));
                parsed.threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage_error("--threads needs a non-negative integer")),
                );
            }
            "--sram" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--sram"));
                parsed.sram =
                    Some(v.parse().ok().filter(|&s| s >= 1).unwrap_or_else(|| {
                        usage_error("--sram needs a positive integer word count")
                    }));
            }
            "--format" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--format"));
                parsed.format = Some(match v.as_str() {
                    "text" => ReportFormat::Text,
                    "json" => ReportFormat::Json,
                    _ => usage_error("--format must be 'text' or 'json'"),
                });
            }
            "--kernel" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--kernel"));
                parsed.kernel = Some(v);
            }
            "--sram-sweep" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--sram-sweep"));
                parsed.sram_sweep = Some(parse_sweep(&v));
            }
            "--policy" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--policy"));
                parsed.policy = Some(match v.as_str() {
                    "lru" => CachePolicy::Lru,
                    "opt" => CachePolicy::Opt,
                    _ => usage_error("--policy must be 'lru' or 'opt'"),
                });
            }
            "--rules" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--rules"));
                parsed.rules = Some(v);
            }
            "--hierarchical" => {
                if inline.is_some() {
                    usage_error("--hierarchical takes no value");
                }
                parsed.hierarchical = true;
            }
            "--clusters" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--clusters"));
                parsed.clusters = Some(v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
                    usage_error("--clusters needs a positive integer cluster count")
                }));
            }
            "--max-vertices" => {
                let v = inline.unwrap_or_else(|| take_value(args, &mut i, "--max-vertices"));
                parsed.max_vertices =
                    Some(v.parse().ok().filter(|&m| m >= 1).unwrap_or_else(|| {
                        usage_error("--max-vertices needs a positive integer vertex count")
                    }));
            }
            _ if a.starts_with('-') => usage_error(&format!("unknown flag '{a}'")),
            _ if parsed.experiment.is_none() => parsed.experiment = Some(a.clone()),
            _ if parsed.experiment.as_deref() == Some("analyze") && parsed.file.is_none() => {
                parsed.file = Some(a.clone());
            }
            _ => usage_error(&format!("unknown experiment '{a}'")),
        }
        i += 1;
    }
    parsed
}

/// Runs the `dmc-lint` static-analysis pass over the enclosing workspace
/// and exits with the report's exit code (0 clean, 1 violations, 2 unused
/// waivers). The workspace root is located by walking up from the current
/// directory, so `repro lint` works from any subdirectory of the repo.
fn run_lint(rules: Option<&str>, format: ReportFormat) -> ! {
    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("cannot determine current directory: {e}");
        std::process::exit(2);
    });
    let root = dmc_lint::find_workspace_root(&cwd).unwrap_or_else(|| {
        eprintln!("no Cargo workspace found above {}", cwd.display());
        std::process::exit(2);
    });
    match dmc_lint::lint_workspace(&root, rules) {
        Ok(report) => {
            match format {
                ReportFormat::Text => print!("{}", report.render_text()),
                ReportFormat::Json => println!("{}", serde::json::to_string(&report)),
            }
            std::process::exit(report.exit_code());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    // Perf-trajectory snapshots (`BENCH_*.json` in `$DMC_BENCH_DIR` or
    // the current directory) are enabled for the binary only — library
    // users, unit tests, and criterion benches never write them.
    dmc_bench::snapshot::enable_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&args);
    let arg = args.experiment.unwrap_or_else(|| "all".to_string());
    // Flags an experiment would silently drop are rejected loudly:
    // `--kernel`/`--sram`/`--format` only shape the analyze/simulate
    // reports, `--sram-sweep`/`--policy` only the simulate sweep, and
    // `--threads` only drives the threaded stages.
    let analyzing_input = arg == "analyze" && (args.file.is_some() || args.kernel.is_some());
    let simulating = arg == "simulate";
    if args.kernel.is_some() && !(arg == "analyze" || simulating) {
        usage_error("--kernel only applies to 'analyze' and 'simulate'");
    }
    if args.kernel.is_some() && args.file.is_some() {
        usage_error("give either a <file.cdag> or --kernel '<spec>', not both");
    }
    if simulating && args.kernel.is_none() {
        usage_error("simulate needs --kernel '<spec>' (see `repro list`)");
    }
    if args.sram.is_some() && !analyzing_input {
        usage_error("--sram only applies to 'analyze <file.cdag>' or 'analyze --kernel'");
    }
    let linting = arg == "lint";
    if args.format.is_some() && !(analyzing_input || simulating || linting) {
        usage_error(
            "--format only applies to 'analyze <file.cdag>', 'analyze --kernel', \
             'simulate', and 'lint'",
        );
    }
    if args.rules.is_some() && !linting {
        usage_error("--rules only applies to 'lint'");
    }
    if (args.sram_sweep.is_some() || args.policy.is_some()) && !simulating {
        usage_error("--sram-sweep and --policy only apply to 'simulate'");
    }
    if args.hierarchical && !analyzing_input {
        usage_error("--hierarchical only applies to 'analyze <file.cdag>' or 'analyze --kernel'");
    }
    if args.clusters.is_some() && !args.hierarchical {
        usage_error("--clusters needs --hierarchical");
    }
    if args.max_vertices.is_some() && !(arg == "analyze" && args.kernel.is_some()) {
        usage_error(
            "--max-vertices only applies to 'analyze --kernel' (the catalog admission limit)",
        );
    }
    if args.threads.is_some()
        && !matches!(
            arg.as_str(),
            "mincut" | "analyze" | "catalog" | "simulate" | "scale" | "all"
        )
    {
        usage_error(
            "--threads only applies to 'mincut', 'analyze', 'catalog', 'simulate', 'scale', and 'all'",
        );
    }
    let threads = args.threads.unwrap_or(0);
    if linting {
        // `lint` owns the process exit code (0 clean / 1 violations /
        // 2 stale waivers), so it never falls through to the generic
        // experiment dispatcher below.
        run_lint(
            args.rules.as_deref(),
            args.format.unwrap_or(ReportFormat::Text),
        );
    }
    let out = dmc_bench::snapshot::timed(&arg, threads, || match arg.as_str() {
        "table1" => dmc_bench::table1(),
        "sec3" => dmc_bench::sec3_composite(&[2, 4, 8]),
        "cg" => dmc_bench::cg_experiment(),
        "gmres" => dmc_bench::gmres_experiment(),
        "jacobi" => dmc_bench::jacobi_experiment(),
        "pebbling" | "validate" => dmc_bench::pebbling_experiment(),
        "mincut" => dmc_bench::mincut_experiment_with(threads),
        "analyze" => {
            let sram = args.sram.unwrap_or(4);
            let format = args.format.unwrap_or(ReportFormat::Text);
            let opts = dmc_bench::AnalyzeOptions {
                hierarchical: args.hierarchical,
                clusters: args.clusters,
                max_vertices: args.max_vertices,
            };
            match (&args.kernel, &args.file) {
                (Some(spec), None) => {
                    dmc_bench::analyze_kernel_spec_with(spec, sram, threads, format, opts)
                        .unwrap_or_else(|e| {
                            // Bad specs are usage errors: loud message, exit 2.
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                }
                (None, Some(path)) => dmc_bench::analyze_file_with(
                    path, sram, threads, format, opts,
                )
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                }),
                _ => dmc_bench::analyze_experiment_with(threads),
            }
        }
        "catalog" => dmc_bench::catalog_experiment_with(threads),
        "simulate" => {
            let format = args.format.unwrap_or(ReportFormat::Text);
            // Checked above, but routed through the usage error rather
            // than a panic so the path stays panic-free (lint rule S1).
            let Some(spec) = args.kernel.as_deref() else {
                usage_error("simulate needs --kernel '<spec>' (see `repro list`)");
            };
            dmc_bench::simulate_kernel_spec(spec, args.sram_sweep, args.policy, threads, format)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
        }
        "scale" => dmc_bench::scale_experiment_with(threads),
        "list" => dmc_bench::list_catalog(),
        "partition" => dmc_bench::partition_experiment(),
        "parallel" => dmc_bench::parallel_experiment(),
        "figures" | "fig1" | "fig2" | "solvers" => dmc_bench::figures(),
        "all" => dmc_bench::run_all_with(threads),
        other => usage_error(&format!("unknown experiment '{other}'")),
    });
    print!("{out}");
}
