//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! repro [table1|sec3|cg|gmres|jacobi|pebbling|mincut|partition|parallel|figures|all]
//! ```

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let out = match arg.as_str() {
        "table1" => dmc_bench::table1(),
        "sec3" => dmc_bench::sec3_composite(&[2, 4, 8]),
        "cg" => dmc_bench::cg_experiment(),
        "gmres" => dmc_bench::gmres_experiment(),
        "jacobi" => dmc_bench::jacobi_experiment(),
        "pebbling" | "validate" => dmc_bench::pebbling_experiment(),
        "mincut" => dmc_bench::mincut_experiment(),
        "partition" => dmc_bench::partition_experiment(),
        "parallel" => dmc_bench::parallel_experiment(),
        "figures" | "fig1" | "fig2" | "solvers" => dmc_bench::figures(),
        "all" => dmc_bench::run_all(),
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: table1 sec3 cg gmres \
                 jacobi pebbling mincut partition parallel figures all"
            );
            std::process::exit(2);
        }
    };
    print!("{out}");
}
