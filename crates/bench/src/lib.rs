//! # dmc-bench — experiment harness
//!
//! One module per paper artefact (see `DESIGN.md`'s per-experiment index
//! and `EXPERIMENTS.md` for recorded outputs). Every experiment returns a
//! formatted table so the `repro` binary and the criterion benches share
//! the exact same code paths.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod loadgen;
pub mod snapshot;

pub use experiments::*;
