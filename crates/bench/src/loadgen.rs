//! The serve-daemon load generator (`repro loadgen`).
//!
//! Boots an in-process [`dmc_serve::Server`] on an ephemeral port, fans
//! `clients` raw-`TcpStream` client threads over a deterministic
//! hot/cold request mix (~90% repeats of a small hot set, ~10%
//! per-client unique cold specs), and reports throughput, latency
//! percentiles, and the cache outcome split. The acceptance floors
//! (≥ 100 req/s against a warm cache, a sane hit rate, zero failed
//! requests) are asserted by `crates/bench/tests/serve_equivalence.rs`
//! on this module's [`LoadReport`]; the CLI path additionally records
//! the numbers as `BENCH_serve.json` via [`crate::snapshot::write`].
//!
//! Wall-clock numbers are inherently run-varying; like every other perf
//! snapshot they live in the side file and this table, never in the
//! deterministic experiment outputs.

use dmc_cdag::fanout::fan_out_indexed;
use dmc_serve::{Limits, Server, ServerConfig, ServiceConfig};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Load-run shape: client/server concurrency and request volume.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client sends in the measured phase.
    pub requests_per_client: usize,
    /// Server worker threads (`0` = `available_parallelism`).
    pub workers: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 50,
            workers: 0,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent in the measured phase (all clients).
    pub requests: u64,
    /// Requests that did not come back HTTP 200.
    pub failed: u64,
    /// Measured-phase throughput, requests per second.
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// `cache_hits / (hits + misses + coalesced)` from `/metrics`.
    pub hit_rate: f64,
    /// Final `/metrics` counters: analyses actually run.
    pub analyses_performed: u64,
    /// Final `/metrics` counters: coalesced duplicate requests.
    pub coalesced: u64,
    /// The rendered result table.
    pub table: String,
}

/// The hot set: cheap catalog specs every client keeps re-requesting.
const HOT_SPECS: [&str; 3] = ["diamond", "fft(n=8)", "reduction(leaves=16)"];

/// Runs one load generation against a fresh in-process daemon.
pub fn run(config: LoadConfig) -> Result<LoadReport, String> {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: config.workers,
        limits: Limits::default(),
        service: ServiceConfig::default(),
        log: false,
    })
    .map_err(|e| format!("cannot bind loadgen server: {e}"))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    // Warm phase (unmeasured): prime the hot set so the throughput floor
    // is a statement about the cache, not about first-analysis cost.
    for spec in HOT_SPECS {
        let (status, body) = post(addr, "/analyze", spec)?;
        if status != 200 {
            return Err(format!("warmup {spec} -> {status}: {body}"));
        }
    }
    // Measured phase: every client interleaves hot repeats with its own
    // cold specs (deterministic mix, ~1 cold in 10).
    // dmc-lint: allow(d2) -- loadgen measures wall-clock throughput by design; results go to the table and BENCH_serve.json, never into deterministic outputs
    let t0 = std::time::Instant::now();
    let per_client: Vec<Result<(Vec<f64>, u64), String>> = fan_out_indexed(
        config.clients,
        config.clients,
        || (),
        |(), client| {
            let mut latencies = Vec::with_capacity(config.requests_per_client);
            let mut failed = 0u64;
            for j in 0..config.requests_per_client {
                let spec = if j % 10 == 9 {
                    // Cold: unique to (client, j) so it always misses.
                    format!("chain(k={})", 100 + client * config.requests_per_client + j)
                } else {
                    HOT_SPECS[(client + j) % HOT_SPECS.len()].to_string()
                };
                // dmc-lint: allow(d2) -- per-request latency sample for the loadgen percentile table; never part of deterministic output
                let t = std::time::Instant::now();
                let (status, body) = post(addr, "/analyze", &spec)?;
                latencies.push(t.elapsed().as_secs_f64() * 1e3);
                if status != 200 {
                    eprintln!("[loadgen] client {client} req {j} {spec} -> {status}: {body}");
                    failed += 1;
                }
            }
            Ok((latencies, failed))
        },
    );
    let elapsed_s = t0.elapsed().as_secs_f64();
    let (_, metrics) = get(addr, "/metrics")?;
    // Graceful shutdown; the server thread must exit cleanly.
    let (status, _) = post(addr, "/shutdown", "")?;
    if status != 200 {
        return Err(format!("shutdown -> {status}"));
    }
    match server_thread.join() {
        Ok(Ok(_summary)) => {}
        Ok(Err(e)) => return Err(format!("server loop failed: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    }
    let mut latencies: Vec<f64> = Vec::new();
    let mut failed = 0u64;
    for r in per_client {
        let (l, f) = r?;
        latencies.extend(l);
        failed += f;
    }
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let requests = (config.clients * config.requests_per_client) as u64;
    let hits = metric(&metrics, "cache_hits")?;
    let misses = metric(&metrics, "cache_misses")?;
    let coalesced = metric(&metrics, "cache_coalesced")?;
    let lookups = hits + misses + coalesced;
    let report = LoadReport {
        requests,
        failed,
        rps: requests as f64 / elapsed_s.max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        analyses_performed: metric(&metrics, "analyses_performed")?,
        coalesced,
        table: String::new(),
    };
    Ok(render(config, report))
}

fn render(config: LoadConfig, mut r: LoadReport) -> LoadReport {
    let mut t = String::from("== loadgen: serve daemon under a hot/cold mix ==\n");
    let _ = writeln!(
        t,
        "clients {}  requests/client {}  server workers {}",
        config.clients,
        config.requests_per_client,
        if config.workers == 0 {
            "auto".to_string()
        } else {
            config.workers.to_string()
        }
    );
    let _ = writeln!(t, "requests            {}", r.requests);
    let _ = writeln!(t, "failed              {}", r.failed);
    let _ = writeln!(t, "throughput          {:.0} req/s", r.rps);
    let _ = writeln!(t, "latency p50         {:.2} ms", r.p50_ms);
    let _ = writeln!(t, "latency p99         {:.2} ms", r.p99_ms);
    let _ = writeln!(t, "cache hit rate      {:.1}%", r.hit_rate * 100.0);
    let _ = writeln!(t, "analyses performed  {}", r.analyses_performed);
    let _ = writeln!(t, "coalesced requests  {}", r.coalesced);
    t.push_str("(floors pinned by crates/bench/tests/serve_equivalence.rs:\n");
    t.push_str(" >=100 req/s warm, hit rate >=70%, zero failures)\n");
    r.table = t;
    r
}

/// `repro loadgen` backend: runs the harness, records `BENCH_serve.json`
/// (when snapshots are enabled), returns the table.
pub fn loadgen_experiment(workers: usize) -> Result<String, String> {
    use serde::json::Value;
    use serde::Serialize as _;
    let config = LoadConfig {
        workers,
        ..LoadConfig::default()
    };
    let r = run(config)?;
    crate::snapshot::write(
        "serve",
        &Value::object([
            ("clients", (config.clients as u64).to_json()),
            (
                "requests_per_client",
                (config.requests_per_client as u64).to_json(),
            ),
            ("requests", r.requests.to_json()),
            ("failed", r.failed.to_json()),
            ("rps", r.rps.to_json()),
            ("p50_ms", r.p50_ms.to_json()),
            ("p99_ms", r.p99_ms.to_json()),
            ("hit_rate", r.hit_rate.to_json()),
            ("analyses_performed", r.analyses_performed.to_json()),
            ("coalesced", r.coalesced.to_json()),
        ]),
    );
    Ok(r.table)
}

/// Minimal raw-socket HTTP client: one request, read to EOF.
fn request(addr: SocketAddr, raw: &str) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.write_all(raw.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    s.read_to_string(&mut resp)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("unparseable response: {resp:?}"))?;
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn post(addr: SocketAddr, target: &str, body: &str) -> Result<(u16, String), String> {
    request(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, target: &str) -> Result<(u16, String), String> {
    request(addr, &format!("GET {target} HTTP/1.1\r\n\r\n"))
}

fn metric(metrics: &str, name: &str) -> Result<u64, String> {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("{name} missing from metrics:\n{metrics}"))
}
