//! `BENCH_*.json` perf-trajectory snapshots.
//!
//! The `repro` binary records machine-readable wall-clock timings for
//! the timed experiments (E16 scale, mincut, analyze, …) so successive
//! checkouts can compare performance instead of flying blind. Snapshots
//! are **process-opt-in**: nothing is written unless [`enable_from_env`]
//! ran first, which only the `repro` binary does — library users, unit
//! tests, and criterion benches never touch the filesystem.
//!
//! Each record lands in `$DMC_BENCH_DIR` (or the workspace root when the
//! variable is unset, falling back to the current directory outside a
//! workspace) as `BENCH_<name>.json`, one JSON object per file,
//! overwritten on every run — the *trajectory* lives in version control,
//! not in an append log. Anchoring the default at the workspace root
//! keeps every snapshot in one place no matter which directory `repro`
//! is invoked from.
//!
//! Determinism: wall-clock numbers are inherently run-varying, which is
//! exactly why they are quarantined in side files instead of the
//! experiment tables the determinism contract covers.

use serde::json::Value;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

static BENCH_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Enables snapshot writing for the rest of this process, targeting
/// `$DMC_BENCH_DIR` when set, else the enclosing workspace root, else the
/// current directory. Called once by the `repro` binary's `main`;
/// idempotent, and a no-op everywhere else.
pub fn enable_from_env() {
    let dir = match std::env::var("DMC_BENCH_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => std::env::current_dir()
            .ok()
            .and_then(|cwd| dmc_lint::find_workspace_root(&cwd))
            .unwrap_or_else(|| PathBuf::from(".")),
    };
    let _ = BENCH_DIR.set(dir);
}

/// The snapshot directory, when enabled.
pub fn enabled_dir() -> Option<&'static Path> {
    BENCH_DIR.get().map(PathBuf::as_path)
}

/// Writes `BENCH_<name>.json` with `payload` if snapshots are enabled;
/// silently does nothing otherwise. Write errors are reported to stderr
/// but never fail the experiment — a read-only checkout still reproduces
/// every table.
pub fn write(name: &str, payload: &impl Serialize) {
    let Some(dir) = enabled_dir() else {
        return;
    };
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut json = serde::json::to_string(payload);
    json.push('\n');
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// Runs `f`, and if snapshots are enabled records its wall-clock time as
/// `BENCH_<name>.json` (`{"experiment", "threads", "wall_ms"}`).
pub fn timed<T>(name: &str, threads: usize, f: impl FnOnce() -> T) -> T {
    if enabled_dir().is_none() {
        return f();
    }
    // dmc-lint: allow(d2) -- the snapshot's whole purpose is recording wall-clock time; results go to BENCH_*.json side files, never into the deterministic experiment tables
    let t0 = std::time::Instant::now();
    let out = f();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    write(
        name,
        &Value::object([
            ("experiment", name.to_json()),
            ("threads", (threads as u64).to_json()),
            ("wall_ms", wall_ms.to_json()),
        ]),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_in_library_use() {
        // Unit tests never call enable_from_env, so nothing is written
        // and `timed` is a transparent passthrough.
        assert!(enabled_dir().is_none());
        assert_eq!(timed("never_written", 1, || 41 + 1), 42);
        write("never_written", &Value::object([]));
        assert!(!std::path::Path::new("BENCH_never_written.json").exists());
    }
}
