//! End-to-end tests of the daemon over real sockets: a raw `TcpStream`
//! test client (no HTTP library on either side), the hostile-input
//! error paths, and the concurrent-determinism contract — exactly one
//! analysis per distinct key at any worker count, byte-identical bodies
//! across repeats and across `--workers 1/2/4`.

use dmc_serve::cache::CacheConfig;
use dmc_serve::http::Limits;
use dmc_serve::server::{Server, ServerConfig};
use dmc_serve::service::ServiceConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Starts a daemon on an ephemeral port; returns its address and the
/// thread running the accept loop (joined by `stop`).
fn start(workers: usize, limits: Limits) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        limits,
        service: ServiceConfig {
            cache: CacheConfig::default(),
            ..ServiceConfig::default()
        },
        log: false,
    };
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        server.run().expect("serve loop");
    });
    (addr, handle)
}

fn stop(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = request(addr, "POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status, 200);
    handle.join().expect("server thread exits cleanly");
}

/// The raw test client: writes `raw` verbatim, reads to EOF, returns
/// (status, body).
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    parse_response(&resp)
}

fn parse_response(resp: &str) -> (u16, String) {
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {resp:?}"));
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    request(addr, &format!("GET {target} HTTP/1.1\r\n\r\n"))
}

/// Pulls one counter off a `/metrics` body.
fn metric(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from metrics:\n{metrics}"))
}

#[test]
fn health_catalog_metrics_roundtrip() {
    let (addr, handle) = start(2, Limits::default());
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = get(addr, "/catalog");
    assert_eq!(status, 200);
    assert!(body.contains("jacobi("), "{body}");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metric(&body, "requests_total") >= 2);
    stop(addr, handle);
}

#[test]
fn analyze_twice_is_one_analysis_and_identical_bytes() {
    let (addr, handle) = start(2, Limits::default());
    let (s1, b1) = post(addr, "/analyze?sram=4", "diamond");
    assert_eq!(s1, 200, "{b1}");
    let (s2, b2) = post(addr, "/analyze?sram=4", "diamond");
    assert_eq!(s2, 200);
    assert_eq!(b1, b2, "cache hit must be byte-identical");
    let (_, m) = get(addr, "/metrics");
    assert_eq!(metric(&m, "analyses_performed"), 1);
    assert_eq!(metric(&m, "cache_hits"), 1);
    assert_eq!(metric(&m, "cache_misses"), 1);
    stop(addr, handle);
}

#[test]
fn error_paths_over_the_wire() {
    let (addr, handle) = start(
        2,
        Limits {
            header_bytes: 512,
            body_bytes: 256,
            read_timeout: Duration::from_millis(300),
        },
    );
    // Bad spec: 400 naming the catalog command.
    let (status, body) = post(addr, "/analyze", "warp_drive(n=4)");
    assert_eq!(status, 400);
    assert!(body.contains("repro list"), "{body}");
    // Oversized build: 413 naming --max-vertices.
    let (status, body) = post(
        addr,
        "/analyze",
        "random(layers=1000,width=65536,deg=3,seed=7)",
    );
    assert_eq!(status, 413);
    assert!(body.contains("--max-vertices"), "{body}");
    // Unknown route: 404.
    let (status, _) = get(addr, "/bounds-for-free");
    assert_eq!(status, 404);
    // Wrong method on a known route: 405.
    let (status, _) = get(addr, "/analyze");
    assert_eq!(status, 405);
    // Oversized declared body: 413 before the body is read.
    let (status, body) = request(
        addr,
        "POST /analyze HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
    );
    assert_eq!(status, 413);
    assert!(body.contains("256-byte"), "{body}");
    // Slow-loris: an unfinished request head times out as 408.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(b"POST /analyze HTTP/1.1\r\nConte")
        .expect("send");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read 408");
    let (status, _) = parse_response(&resp);
    assert_eq!(status, 408);
    // Garbage request line: 400.
    let (status, _) = request(addr, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // Unsupported protocol: 400.
    let (status, _) = request(addr, "GET / HTTP/3.0\r\n\r\n");
    assert_eq!(status, 400);
    // And after all that abuse the daemon still serves.
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    stop(addr, handle);
}

#[test]
fn huge_header_section_is_431() {
    let (addr, handle) = start(
        1,
        Limits {
            header_bytes: 256,
            body_bytes: 1024,
            read_timeout: Duration::from_secs(2),
        },
    );
    let padding = "X-Filler: ".to_string() + &"a".repeat(512);
    let (status, _) = request(addr, &format!("GET /healthz HTTP/1.1\r\n{padding}\r\n\r\n"));
    assert_eq!(status, 431);
    stop(addr, handle);
}

/// The concurrent-determinism contract: 8 client threads hammering a
/// hot/cold mix, exactly one analysis per distinct key, and the body
/// bytes identical no matter which thread, repeat, or worker count
/// served them.
#[test]
fn concurrent_duplicates_coalesce_and_agree_at_any_worker_count() {
    const CLIENTS: usize = 8;
    const SPECS: [&str; 3] = ["diamond", "fft(n=8)", "reduction(leaves=16)"];
    let mut golden: Vec<Option<String>> = vec![None; SPECS.len()];
    for workers in [1usize, 2, 4] {
        let (addr, handle) = start(workers, Limits::default());
        let bodies: Vec<Vec<(usize, String)>> = dmc_cdag::fanout::fan_out_indexed(
            CLIENTS,
            CLIENTS,
            || (),
            |(), i| {
                // Each client posts every spec twice (first wave may
                // coalesce, second wave must hit).
                (0..2)
                    .map(|round| {
                        let spec_idx = (i + round) % SPECS.len();
                        let (status, body) = post(addr, "/analyze", SPECS[spec_idx]);
                        assert_eq!(status, 200, "worker={workers} client={i}: {body}");
                        (spec_idx, body)
                    })
                    .collect()
            },
        );
        let (_, m) = get(addr, "/metrics");
        assert_eq!(
            metric(&m, "analyses_performed"),
            SPECS.len() as u64,
            "workers={workers}: exactly one analysis per distinct key\n{m}"
        );
        assert_eq!(metric(&m, "cache_misses"), SPECS.len() as u64);
        for (spec_idx, body) in bodies.into_iter().flatten() {
            match &golden[spec_idx] {
                None => golden[spec_idx] = Some(body),
                Some(g) => assert_eq!(
                    g, &body,
                    "workers={workers}: body for {} diverged",
                    SPECS[spec_idx]
                ),
            }
        }
        stop(addr, handle);
    }
}

#[test]
fn shutdown_refuses_new_connections() {
    let (addr, handle) = start(2, Limits::default());
    stop(addr, handle);
    // The listener is gone: connecting (or speaking) must fail.
    let refused = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            matches!(s.read_to_string(&mut out), Ok(0) | Err(_)) || out.is_empty()
        }
    };
    assert!(refused, "daemon still answering after shutdown");
}

#[test]
fn simulate_endpoint_roundtrip() {
    let (addr, handle) = start(2, Limits::default());
    let (status, b1) = post(addr, "/simulate?policy=lru", "matmul(n=3)");
    assert_eq!(status, 200, "{b1}");
    assert!(b1.ends_with('\n'));
    let (_, b2) = post(addr, "/simulate?policy=lru", "matmul(n=3)");
    assert_eq!(b1, b2);
    let (status, body) = post(addr, "/simulate?sram-sweep=8:4:1", "fft(n=8)");
    assert_eq!(status, 400);
    assert!(body.contains("lo:hi:step"), "{body}");
    stop(addr, handle);
}

/// The machine-hierarchy endpoint over real sockets: cached under the
/// content-addressed key, loud on bad machines, and byte-identical
/// across `--workers 1/2/4`.
#[test]
fn simulate_machine_endpoint_roundtrip_at_any_worker_count() {
    let mut golden: Option<String> = None;
    for workers in [1usize, 2, 4] {
        let (addr, handle) = start(workers, Limits::default());
        // `IBM+BG%2FQ` — spaces and slashes cannot ride raw in the
        // request target; the daemon percent-decodes query values.
        let (status, b1) = post(addr, "/simulate?machine=IBM+BG%2FQ", "fft(n=8)");
        assert_eq!(status, 200, "workers={workers}: {b1}");
        assert!(b1.contains("\"machine\":\"IBM BG/Q\""), "{b1}");
        assert!(b1.ends_with('\n'));
        // Same key: the explicit default S1 must hit the cache.
        let (_, b2) = post(addr, "/simulate?machine=IBM+BG%2FQ&sram=64", "fft(n=8)");
        assert_eq!(b1, b2, "workers={workers}: cached body diverged");
        let (_, m) = get(addr, "/metrics");
        assert_eq!(
            metric(&m, "cache_hits"),
            1,
            "workers={workers}: default S1 must land on the same key\n{m}"
        );
        // Unknown machine: 400 naming the catalog.
        let (status, body) = post(addr, "/simulate?machine=bogus", "fft(n=8)");
        assert_eq!(status, 400);
        assert!(body.contains("IBM BG/Q, Cray XT5, K computer"), "{body}");
        match &golden {
            None => golden = Some(b1),
            Some(g) => assert_eq!(g, &b1, "workers={workers}: body diverged"),
        }
        stop(addr, handle);
    }
}
