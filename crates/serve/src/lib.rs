//! `dmc-serve` — bounds-as-a-service: the dmc analysis pipeline behind a
//! threaded HTTP/1.1 daemon with a content-addressed result cache.
//!
//! The paper's analysis pipeline is deterministic and pure: the same
//! kernel spec (or `.cdag` graph) and the same options always produce
//! the same report, bit for bit, at any thread count. That purity is an
//! invitation to memoize — this crate accepts it. `repro serve` exposes
//!
//! * `GET /catalog` — the kernel-spec catalog (`repro list`),
//! * `GET /healthz`, `GET /metrics` — liveness and counters,
//! * `POST /analyze` — the certified-bound report, byte-identical to
//!   `repro analyze --kernel <spec> --format json`,
//! * `POST /simulate` — the validation-sandwich report,
//! * `POST /shutdown` — graceful drain-and-exit,
//!
//! with every result cached under its *content*: the canonical spec
//! render or the FNV-1a hash of the graph's canonical text
//! ([`dmc_cdag::Cdag::content_hash`]). Concurrent duplicates coalesce
//! onto one in-flight analysis ([`cache`]), the cache is bounded (LRU),
//! and admission control rejects oversized builds with HTTP 413 before
//! any memory is committed.
//!
//! The stack is hand-rolled on `std::net` ([`http`]) because the
//! workspace vendors its dependencies — no tokio, no hyper — and the
//! daemon needs only a deliberately small slice of HTTP/1.1. Module
//! map: [`http`] (wire) → [`server`] (accept loop + worker pool) →
//! [`service`] (routes + admission + compute) → [`cache`]
//! (content-addressed LRU + single-flight).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod http;
pub mod server;
pub mod service;

pub use cache::{CacheConfig, CacheStats, Outcome, ResultCache};
pub use http::Limits;
pub use server::{ServeSummary, Server, ServerConfig};
pub use service::{Reply, Service, ServiceConfig};
