//! Request routing and the analysis compute paths.
//!
//! The service is deliberately a thin shim over the same library calls
//! the `repro` CLI makes: `POST /analyze` runs exactly the pipeline of
//! `repro analyze --kernel <spec> --format json` (same
//! [`AnalyzerConfig`], same
//! `serde::json::to_string(&report)` + trailing newline), so a cached
//! HTTP body is byte-for-byte the CLI's stdout. The equivalence is
//! pinned by a test in `crates/bench/tests` (which can see both crates).
//!
//! Every response is computed through the [`ResultCache`]: the cache key
//! is the *canonical* input — [`KernelSpec::render`](dmc_kernels::catalog::KernelSpec::render) for specs, the
//! FNV-1a [`content_hash`](dmc_cdag::Cdag::content_hash) of the
//! canonical text for uploaded graphs — plus the options that change the
//! report. `threads` is deliberately **excluded** from keys: the repo's
//! determinism contract (lint rule D2, `docs/DETERMINISM.md`) makes
//! every report bit-identical at any worker count, so thread count is a
//! wall-clock knob, not an input.

use crate::cache::{CacheConfig, Outcome, ResultCache};
use crate::http::Request;
use dmc_core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
use dmc_kernels::catalog::{Registry, SpecError, DEFAULT_MAX_BUILD_VERTICES};
use dmc_sim::CachePolicy;
use std::sync::atomic::{AtomicU64, Ordering};

/// Knobs of the compute layer (the server adds socket/pool knobs on top).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Build-admission limit: requests whose graph would exceed this
    /// many vertices get HTTP 413 before anything is built
    /// (`--max-vertices`).
    pub max_vertices: u64,
    /// Worker threads handed to the analysis pipeline per request
    /// (`--threads`; `0` = `std::thread::available_parallelism`). A
    /// per-request `threads` query parameter overrides it. Never part
    /// of a cache key — reports are thread-invariant by contract.
    pub threads: usize,
    /// Result-cache caps (`--cache-entries` / `--cache-bytes`).
    pub cache: CacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_vertices: DEFAULT_MAX_BUILD_VERTICES,
            threads: 0,
            cache: CacheConfig::default(),
        }
    }
}

/// A fully-formed response, ready for
/// [`write_response`](crate::http::write_response).
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// The fixed reason phrase for `status`.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body. `Arc` so cache hits never copy the report.
    pub body: std::sync::Arc<String>,
    /// How the cache served this (analysis endpoints only).
    pub outcome: Option<Outcome>,
    /// Set by `POST /shutdown`: the server should drain and exit.
    pub shutdown: bool,
}

impl Reply {
    fn plain(status: u16, body: String) -> Reply {
        Reply {
            status,
            reason: reason_phrase(status),
            content_type: "text/plain; charset=utf-8",
            body: std::sync::Arc::new(body),
            outcome: None,
            shutdown: false,
        }
    }

    fn json(body: std::sync::Arc<String>, outcome: Outcome) -> Reply {
        Reply {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body,
            outcome: Some(outcome),
            shutdown: false,
        }
    }
}

/// The fixed reason phrase for each status the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An error response in the making: status + loud plain-text body.
struct HttpError {
    status: u16,
    body: String,
}

impl HttpError {
    fn bad_request(body: String) -> HttpError {
        HttpError { status: 400, body }
    }
}

/// Request counters beyond the cache's own (all monotonic).
#[derive(Default)]
struct Counters {
    requests_total: AtomicU64,
    analyze_requests: AtomicU64,
    simulate_requests: AtomicU64,
    errors_total: AtomicU64,
    analyses_performed: AtomicU64,
}

/// The shared compute layer: routes requests, owns the result cache and
/// the counters. One instance serves all worker threads.
pub struct Service {
    config: ServiceConfig,
    cache: ResultCache,
    counters: Counters,
}

impl Service {
    /// A fresh service with an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            cache: ResultCache::new(config.cache),
            config,
            counters: Counters::default(),
        }
    }

    /// Routes one parsed request to a response. Panics in the analysis
    /// pipeline are contained (500), so a poisoned request can never
    /// take a worker or wedge the cache's in-flight markers.
    pub fn handle(&self, req: &Request) -> Reply {
        self.counters.requests_total.fetch_add(1, Ordering::Relaxed);
        let reply = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => Reply::plain(200, index_page()),
            ("GET", "/healthz") => Reply::plain(200, "ok\n".to_string()),
            ("GET", "/catalog") => Reply::plain(200, Registry::shared().format_catalog()),
            ("GET", "/metrics") => Reply::plain(200, self.metrics_text()),
            ("POST", "/analyze") => {
                self.counters.analyze_requests.fetch_add(1, Ordering::Relaxed);
                self.cached(req, Endpoint::Analyze)
            }
            ("POST", "/simulate") => {
                self.counters
                    .simulate_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.cached(req, Endpoint::Simulate)
            }
            ("POST", "/shutdown") => {
                let mut r = Reply::plain(200, "shutting down: draining in-flight requests\n".into());
                r.shutdown = true;
                r
            }
            (_, "/" | "/healthz" | "/catalog" | "/metrics" | "/analyze" | "/simulate"
            | "/shutdown") => Reply::plain(
                405,
                format!(
                    "method {} not allowed on {} (GET for reads, POST for /analyze, /simulate, /shutdown)\n",
                    req.method, req.path
                ),
            ),
            (_, path) => Reply::plain(
                404,
                format!("no route {path}; endpoints: GET / /healthz /catalog /metrics, POST /analyze /simulate /shutdown\n"),
            ),
        };
        if reply.status >= 400 {
            self.counters.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        reply
    }

    /// One analysis endpoint through the cache: build the canonical key,
    /// then `get_or_compute` with the panic-contained pipeline call.
    fn cached(&self, req: &Request, endpoint: Endpoint) -> Reply {
        let plan = match self.plan(req, endpoint) {
            Ok(p) => p,
            Err(e) => return Reply::plain(e.status, e.body),
        };
        let result = self.cache.get_or_compute(&plan.key, || {
            // A panicking analysis must not leak the in-flight marker
            // (waiters would block forever) or kill the worker, so it is
            // demoted to a plain 500 right here.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.counters
                    .analyses_performed
                    .fetch_add(1, Ordering::Relaxed);
                plan.run()
            }))
            .unwrap_or_else(|_| {
                Err(HttpError {
                    status: 500,
                    body: "analysis panicked; see server log\n".to_string(),
                })
            })
        });
        match result {
            Ok((body, outcome)) => Reply::json(body, outcome),
            Err(e) => Reply::plain(e.status, e.body),
        }
    }

    /// The `/metrics` body: stable `name value` lines, one per counter.
    pub fn metrics_text(&self) -> String {
        let c = &self.counters;
        let s = self.cache.stats();
        format!(
            "requests_total {}\nanalyze_requests {}\nsimulate_requests {}\nerrors_total {}\nanalyses_performed {}\ncache_hits {}\ncache_misses {}\ncache_coalesced {}\ncache_evictions {}\ncache_entries {}\ncache_bytes {}\n",
            c.requests_total.load(Ordering::Relaxed),
            c.analyze_requests.load(Ordering::Relaxed),
            c.simulate_requests.load(Ordering::Relaxed),
            c.errors_total.load(Ordering::Relaxed),
            c.analyses_performed.load(Ordering::Relaxed),
            s.hits,
            s.misses,
            s.coalesced,
            s.evictions,
            s.entries,
            s.bytes,
        )
    }

    /// Parses query parameters + body into a validated compute plan (or
    /// the 400/413 that rejects it), without running anything yet.
    fn plan(&self, req: &Request, endpoint: Endpoint) -> Result<Plan, HttpError> {
        let threads = match req.query_param("threads") {
            Some(v) => v.parse().map_err(|_| {
                HttpError::bad_request(format!(
                    "query parameter threads={v:?} needs a non-negative integer\n"
                ))
            })?,
            None => self.config.threads,
        };
        if req.body.trim().is_empty() {
            return Err(HttpError::bad_request(format!(
                "{} needs a request body: a kernel spec string (see GET /catalog) or `.cdag` text\n",
                endpoint.path()
            )));
        }
        match endpoint {
            Endpoint::Analyze => self.plan_analyze(req, threads),
            Endpoint::Simulate => self.plan_simulate(req, threads),
        }
    }

    fn plan_analyze(&self, req: &Request, threads: usize) -> Result<Plan, HttpError> {
        let sram = match req.query_param("sram") {
            Some(v) => v.parse::<u64>().ok().filter(|&s| s >= 1).ok_or_else(|| {
                HttpError::bad_request(format!(
                    "query parameter sram={v:?} needs a positive integer word count\n"
                ))
            })?,
            None => 4,
        };
        let hierarchical = truthy_flag(req, "hierarchical")?;
        let clusters = match req.query_param("clusters") {
            Some(v) => Some(v.parse::<usize>().ok().filter(|&k| k >= 1).ok_or_else(|| {
                HttpError::bad_request(format!(
                    "query parameter clusters={v:?} needs a positive integer cluster count\n"
                ))
            })?),
            None => None,
        };
        if clusters.is_some() && !hierarchical {
            return Err(HttpError::bad_request(
                "query parameter clusters needs hierarchical=true\n".to_string(),
            ));
        }
        let clusters_key = clusters.map_or("auto".to_string(), |k| k.to_string());
        if looks_like_cdag_text(&req.body) {
            let g = dmc_cdag::textio::from_text(&req.body).map_err(|e| {
                HttpError::bad_request(format!("cannot parse request body as `.cdag` text: {e}\n"))
            })?;
            if g.num_vertices() as u64 > self.config.max_vertices {
                return Err(HttpError {
                    status: 413,
                    body: format!(
                        "graph has {} vertices, above the admission limit of {} (restart the daemon with a higher --max-vertices)\n",
                        g.num_vertices(),
                        self.config.max_vertices
                    ),
                });
            }
            let key = format!(
                "analyze cdag={:016x} sram={sram} hier={hierarchical} clusters={clusters_key}",
                g.content_hash()
            );
            Ok(Plan {
                key,
                kind: PlanKind::AnalyzeCdag {
                    g,
                    sram,
                    threads,
                    hierarchical,
                    clusters,
                },
            })
        } else {
            let spec = req.body.trim().to_string();
            let parsed = self.admit(&spec)?;
            let key = format!(
                "analyze spec={} sram={sram} hier={hierarchical} clusters={clusters_key}",
                parsed.render()
            );
            Ok(Plan {
                key,
                kind: PlanKind::AnalyzeSpec {
                    spec,
                    sram,
                    threads,
                    hierarchical,
                    clusters,
                },
            })
        }
    }

    fn plan_simulate(&self, req: &Request, threads: usize) -> Result<Plan, HttpError> {
        let policy = match req.query_param("policy") {
            Some("lru") => Some(CachePolicy::Lru),
            Some("opt") => Some(CachePolicy::Opt),
            Some("both") | None => None,
            Some(other) => {
                return Err(HttpError::bad_request(format!(
                    "query parameter policy={other:?} must be 'lru', 'opt', or 'both'\n"
                )))
            }
        };
        let sweep = match req.query_param("sram-sweep") {
            Some(raw) => {
                let parts: Vec<Option<u64>> = raw.split(':').map(|p| p.parse().ok()).collect();
                match parts.as_slice() {
                    [Some(lo), Some(hi), Some(step)] => Some((*lo, *hi, *step)),
                    _ => {
                        return Err(HttpError::bad_request(format!(
                            "query parameter sram-sweep={raw:?} needs lo:hi:step (three positive integers)\n"
                        )))
                    }
                }
            }
            None => None,
        };
        let spec = req.body.trim().to_string();
        let parsed = self.admit(&spec)?;
        let policy_key = match policy {
            Some(CachePolicy::Lru) => "lru",
            Some(CachePolicy::Opt) => "opt",
            None => "both",
        };
        if let Some(machine_arg) = req.query_param("machine") {
            // Machine-hierarchy simulation (`repro simulate --machine`).
            // Only catalog names resolve here — the daemon never reads
            // spec files off its own filesystem.
            if sweep.is_some() {
                return Err(HttpError::bad_request(
                    "query parameter sram-sweep does not apply with machine=...; use sram to set S1
"
                    .to_string(),
                ));
            }
            let machines = if machine_arg.eq_ignore_ascii_case("all")
                || machine_arg.eq_ignore_ascii_case("catalog")
            {
                dmc_machine::specs::machine_catalog()
            } else {
                match dmc_machine::specs::find_machine(machine_arg) {
                    Some(m) => vec![m],
                    None => {
                        return Err(HttpError::bad_request(format!(
                            "query parameter machine={machine_arg:?} is not a catalog entry ({}) — use a catalog name or 'all'
",
                            dmc_machine::specs::catalog_names().join(", ")
                        )))
                    }
                }
            };
            let s1 = match req.query_param("sram") {
                Some(v) => v.parse::<u64>().ok().filter(|&s| s >= 1).ok_or_else(|| {
                    HttpError::bad_request(format!(
                        "query parameter sram={v:?} needs a positive integer word count (the per-core S1)
"
                    ))
                })?,
                // Mirrors `dmc_bench::DEFAULT_MACHINE_S1`.
                None => 64,
            };
            let machine_key = machines
                .iter()
                .map(|m| m.name.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let key = format!(
                "simulate spec={} machine={machine_key} s1={s1} policy={policy_key}",
                parsed.render()
            );
            return Ok(Plan {
                key,
                kind: PlanKind::SimulateMachine {
                    spec,
                    machines,
                    s1,
                    policy,
                    threads,
                },
            });
        }
        let sweep_key = sweep.map_or("auto".to_string(), |(lo, hi, st)| format!("{lo}:{hi}:{st}"));
        let key = format!(
            "simulate spec={} policy={policy_key} sweep={sweep_key}",
            parsed.render()
        );
        Ok(Plan {
            key,
            kind: PlanKind::Simulate {
                spec,
                sweep,
                policy,
                threads,
            },
        })
    }

    /// Catalog admission: parse under the configured vertex ceiling,
    /// mapping "too big" to 413 and everything else to 400 — both with
    /// the catalog's own loud message.
    fn admit(&self, spec: &str) -> Result<dmc_kernels::catalog::KernelSpec<'static>, HttpError> {
        Registry::shared()
            .parse_within(spec, self.config.max_vertices)
            .map_err(|e| {
                let status = match e {
                    SpecError::TooLarge { .. } => 413,
                    _ => 400,
                };
                HttpError {
                    status,
                    body: format!("{e}\n(run `repro list` for the catalog)\n"),
                }
            })
    }
}

/// Which analysis endpoint a plan belongs to.
#[derive(Clone, Copy)]
enum Endpoint {
    Analyze,
    Simulate,
}

impl Endpoint {
    fn path(self) -> &'static str {
        match self {
            Endpoint::Analyze => "POST /analyze",
            Endpoint::Simulate => "POST /simulate",
        }
    }
}

/// A validated compute plan: the cache key plus everything `run` needs.
struct Plan {
    key: String,
    kind: PlanKind,
}

enum PlanKind {
    AnalyzeSpec {
        spec: String,
        sram: u64,
        threads: usize,
        hierarchical: bool,
        clusters: Option<usize>,
    },
    AnalyzeCdag {
        g: dmc_cdag::Cdag,
        sram: u64,
        threads: usize,
        hierarchical: bool,
        clusters: Option<usize>,
    },
    Simulate {
        spec: String,
        sweep: Option<(u64, u64, u64)>,
        policy: Option<CachePolicy>,
        threads: usize,
    },
    SimulateMachine {
        spec: String,
        machines: Vec<dmc_machine::MachineSpec>,
        s1: u64,
        policy: Option<CachePolicy>,
        threads: usize,
    },
}

impl Plan {
    /// Runs the pipeline. These paths mirror the `repro` CLI backends
    /// line for line (same analyzer config, same JSON render, same
    /// trailing newline) — that is the byte-identity contract.
    fn run(&self) -> Result<String, HttpError> {
        match &self.kind {
            PlanKind::AnalyzeSpec {
                spec,
                sram,
                threads,
                hierarchical,
                clusters,
            } => {
                // Mirrors `dmc_bench::analyze_kernel_spec_with` (Json).
                let parsed = Registry::shared()
                    .parse_within(spec, u64::MAX)
                    .map_err(|e| HttpError::bad_request(format!("{e}\n")))?;
                let analyzer = Analyzer::new(AnalyzerConfig {
                    sram: *sram,
                    threads: *threads,
                    verdicts: true,
                    ..AnalyzerConfig::default()
                });
                let report = if *hierarchical {
                    let hopts = HierarchicalOptions {
                        clusters: *clusters,
                        ..HierarchicalOptions::default()
                    };
                    analyzer.analyze_kernel_hierarchical(&parsed, &hopts)
                } else {
                    analyzer.analyze_kernel(&parsed)
                };
                let mut json = serde::json::to_string(&report);
                json.push('\n');
                Ok(json)
            }
            PlanKind::AnalyzeCdag {
                g,
                sram,
                threads,
                hierarchical,
                clusters,
            } => {
                // Mirrors `dmc_bench::analyze_file_with` (Json), minus
                // the filesystem read (the body is the file).
                let analyzer = Analyzer::new(AnalyzerConfig {
                    sram: *sram,
                    threads: *threads,
                    verdicts: true,
                    ..AnalyzerConfig::default()
                });
                let report = if *hierarchical {
                    let hopts = HierarchicalOptions {
                        clusters: *clusters,
                        ..HierarchicalOptions::default()
                    };
                    analyzer.analyze_hierarchical(g, &hopts)
                } else {
                    analyzer.analyze(g)
                };
                let mut json = serde::json::to_string(&report);
                json.push('\n');
                Ok(json)
            }
            PlanKind::Simulate {
                spec,
                sweep,
                policy,
                threads,
            } => {
                // Mirrors `dmc_bench::simulate_kernel_spec` (Json),
                // including the sweep validation messages.
                let parsed = Registry::shared()
                    .parse(spec)
                    .map_err(|e| HttpError::bad_request(format!("{e}\n")))?;
                let g = parsed.build();
                let srams: Vec<u64> = match sweep {
                    Some((lo, hi, step)) => {
                        if *lo == 0 || *step == 0 || hi < lo {
                            return Err(HttpError::bad_request(
                                "sram-sweep needs lo:hi:step with 1 <= lo <= hi and step >= 1\n"
                                    .to_string(),
                            ));
                        }
                        let points = (hi - lo) / step + 1;
                        if points > 256 {
                            return Err(HttpError::bad_request(format!(
                                "sram-sweep spans {points} points (limit 256); widen the step\n"
                            )));
                        }
                        (*lo..=*hi).step_by(*step as usize).collect()
                    }
                    None => {
                        let required = dmc_sim::simulation::min_feasible_capacity(&g) as u64;
                        vec![required, 2 * required, 4 * required]
                    }
                };
                let analyzer = Analyzer::new(AnalyzerConfig {
                    threads: *threads,
                    ..AnalyzerConfig::default()
                });
                let report = analyzer.validate_built(&parsed, &g, &srams, *policy);
                let mut json = serde::json::to_string(&report);
                json.push('\n');
                Ok(json)
            }
            PlanKind::SimulateMachine {
                spec,
                machines,
                s1,
                policy,
                threads,
            } => {
                // Mirrors `dmc_bench::simulate_machine` (Json): one
                // machine renders the bare report, several wrap in a
                // `{"reports": [...]}` envelope, machines in sweep order.
                use serde::Serialize;
                let analyzer = Analyzer::new(AnalyzerConfig {
                    threads: *threads,
                    ..AnalyzerConfig::default()
                });
                let mut reports = Vec::new();
                for machine in machines {
                    let r = analyzer
                        .validate_machine_spec(spec, machine, *s1, *policy)
                        .map_err(|e| HttpError::bad_request(format!("{e}\n")))?;
                    reports.push(r);
                }
                let mut json = if reports.len() == 1 {
                    serde::json::to_string(&reports[0])
                } else {
                    serde::json::to_string(&serde::json::Value::object([(
                        "reports",
                        reports.to_json(),
                    )]))
                };
                json.push('\n');
                Ok(json)
            }
        }
    }
}

/// `hierarchical=...`-style boolean query flags: presence alone or an
/// explicit true/1 is on, false/0 is off, anything else is a loud 400.
fn truthy_flag(req: &Request, name: &str) -> Result<bool, HttpError> {
    match req.query_param(name) {
        None => Ok(false),
        Some("" | "true" | "1") => Ok(true),
        Some("false" | "0") => Ok(false),
        Some(other) => Err(HttpError::bad_request(format!(
            "query parameter {name}={other:?} must be true/1 or false/0\n"
        ))),
    }
}

/// Does the body look like `.cdag` text (vs a one-line kernel spec)?
/// The text format always carries a `cdag N` header line, possibly after
/// comments; a catalog spec never contains one.
fn looks_like_cdag_text(body: &str) -> bool {
    body.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| l.starts_with("cdag "))
}

/// The `GET /` index: a one-screen map of the API.
fn index_page() -> String {
    "dmc-serve: bounds-as-a-service over the dmc analysis pipeline\n\
     \n\
     GET  /          this page\n\
     GET  /healthz   liveness probe (\"ok\")\n\
     GET  /catalog   the kernel-spec catalog (same as `repro list`)\n\
     GET  /metrics   request + cache counters, one `name value` per line\n\
     POST /analyze   body: kernel spec (e.g. jacobi(n=64,d=2,t=8)) or `.cdag` text\n\
     \x20               query: sram=S threads=N hierarchical[=true] clusters=K\n\
     \x20               -> the certified-bound report as JSON, byte-identical to\n\
     \x20                  `repro analyze --kernel <spec> --format json`\n\
     POST /simulate  body: kernel spec\n\
     \x20               query: sram-sweep=lo:hi:step policy=lru|opt|both threads=N\n\
     \x20               -> the validation-sandwich report as JSON\n\
     \x20               query: machine=<catalog name|all> [sram=S1]\n\
     \x20               -> the machine-hierarchy roofline report as JSON,\n\
     \x20                  byte-identical to `repro simulate --machine ...\n\
     \x20                  --kernel <spec> --format json`\n\
     POST /shutdown  drain in-flight requests and exit\n\
     \n\
     Results are cached by canonical content (spec render / graph hash);\n\
     identical requests are answered from the cache, concurrent duplicates\n\
     share one in-flight analysis.\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.to_string(),
        }
    }

    fn service() -> Service {
        Service::new(ServiceConfig::default())
    }

    #[test]
    fn health_catalog_and_index_routes() {
        let s = service();
        assert_eq!(*s.handle(&req("GET", "/healthz", &[], "")).body, "ok\n");
        let cat = s.handle(&req("GET", "/catalog", &[], ""));
        assert_eq!(cat.status, 200);
        assert!(cat.body.contains("jacobi("), "{}", cat.body);
        let idx = s.handle(&req("GET", "/", &[], ""));
        assert!(idx.body.contains("/analyze"));
    }

    #[test]
    fn unknown_route_404_and_wrong_method_405() {
        let s = service();
        assert_eq!(s.handle(&req("GET", "/nope", &[], "")).status, 404);
        assert_eq!(s.handle(&req("POST", "/healthz", &[], "x")).status, 405);
        assert_eq!(s.handle(&req("GET", "/analyze", &[], "")).status, 405);
    }

    #[test]
    fn analyze_caches_by_canonical_spec() {
        let s = service();
        // Same kernel, different spelling (whitespace + defaulted param
        // order is normalized by the catalog render).
        let a = s.handle(&req("POST", "/analyze", &[], "diamond"));
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.outcome, Some(Outcome::Miss));
        let b = s.handle(&req("POST", "/analyze", &[], " diamond "));
        assert_eq!(b.outcome, Some(Outcome::Hit));
        assert_eq!(a.body, b.body);
        assert!(a.body.ends_with('\n'));
    }

    #[test]
    fn analyze_distinguishes_options_in_the_key() {
        let s = service();
        let a = s.handle(&req("POST", "/analyze", &[], "diamond"));
        let b = s.handle(&req("POST", "/analyze", &[("sram", "8")], "diamond"));
        assert_eq!(b.outcome, Some(Outcome::Miss), "different sram, new key");
        assert_ne!(a.body, b.body);
        // threads must NOT change the key (reports are thread-invariant).
        let c = s.handle(&req("POST", "/analyze", &[("threads", "2")], "diamond"));
        assert_eq!(c.outcome, Some(Outcome::Hit));
        assert_eq!(a.body, c.body);
    }

    #[test]
    fn analyze_accepts_cdag_text_bodies() {
        let s = service();
        let text = "cdag 3\nv 0 in \"a\"\nv 1 op \"b\"\nv 2 out \"c\"\ne 0 1\ne 1 2\n";
        let a = s.handle(&req("POST", "/analyze", &[], text));
        assert_eq!(a.status, 200, "{}", a.body);
        // Same graph, different comment/whitespace spelling: same key.
        let noisy = format!("# hello\n\n{text}");
        let b = s.handle(&req("POST", "/analyze", &[], &noisy));
        assert_eq!(b.outcome, Some(Outcome::Hit));
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn bad_spec_is_400_naming_the_catalog() {
        let s = service();
        let r = s.handle(&req("POST", "/analyze", &[], "warp_drive(n=4)"));
        assert_eq!(r.status, 400);
        assert!(r.body.contains("repro list"), "{}", r.body);
    }

    #[test]
    fn oversized_spec_is_413_naming_the_limit() {
        let s = service();
        let r = s.handle(&req(
            "POST",
            "/analyze",
            &[],
            "random(layers=1000,width=65536,deg=3,seed=7)",
        ));
        assert_eq!(r.status, 413, "{}", r.body);
        assert!(r.body.contains("--max-vertices"), "{}", r.body);
    }

    #[test]
    fn simulate_runs_and_caches() {
        let s = service();
        let a = s.handle(&req("POST", "/simulate", &[], "matmul(n=3)"));
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.outcome, Some(Outcome::Miss));
        let b = s.handle(&req(
            "POST",
            "/simulate",
            &[("policy", "both")],
            "matmul(n=3)",
        ));
        assert_eq!(b.outcome, Some(Outcome::Hit), "explicit 'both' = default");
        let c = s.handle(&req(
            "POST",
            "/simulate",
            &[("policy", "lru")],
            "matmul(n=3)",
        ));
        assert_eq!(c.outcome, Some(Outcome::Miss));
    }

    #[test]
    fn simulate_rejects_bad_sweeps_loudly() {
        let s = service();
        let r = s.handle(&req(
            "POST",
            "/simulate",
            &[("sram-sweep", "8:4:1")],
            "fft(n=8)",
        ));
        assert_eq!(r.status, 400);
        assert!(r.body.contains("lo:hi:step"), "{}", r.body);
        let r = s.handle(&req(
            "POST",
            "/simulate",
            &[("sram-sweep", "1:10000:1")],
            "fft(n=8)",
        ));
        assert_eq!(r.status, 400);
        assert!(r.body.contains("limit 256"), "{}", r.body);
    }

    #[test]
    fn simulate_machine_runs_and_caches() {
        let s = service();
        let a = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "IBM BG/Q")],
            "fft(n=8)",
        ));
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.outcome, Some(Outcome::Miss));
        assert!(a.body.contains("\"machine\":\"IBM BG/Q\""), "{}", a.body);
        assert!(a.body.ends_with('\n'));
        // Case-insensitive catalog lookup and an explicit default S1 land
        // on the same cache entry.
        let b = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "ibm bg/q"), ("sram", "64")],
            "fft(n=8)",
        ));
        assert_eq!(b.outcome, Some(Outcome::Hit));
        assert_eq!(a.body, b.body);
        // threads must NOT change the key (reports are thread-invariant).
        let c = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "IBM BG/Q"), ("threads", "2")],
            "fft(n=8)",
        ));
        assert_eq!(c.outcome, Some(Outcome::Hit));
        assert_eq!(a.body, c.body);
        // A different S1 is a different key.
        let d = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "IBM BG/Q"), ("sram", "8")],
            "fft(n=8)",
        ));
        assert_eq!(d.outcome, Some(Outcome::Miss));
        assert_ne!(a.body, d.body);
    }

    #[test]
    fn simulate_machine_all_wraps_reports() {
        let s = service();
        let r = s.handle(&req("POST", "/simulate", &[("machine", "all")], "fft(n=8)"));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.starts_with("{\"reports\":["), "{}", r.body);
        assert!(r.body.contains("Cray XT5"), "{}", r.body);
        assert!(r.body.contains("K computer"), "{}", r.body);
    }

    #[test]
    fn simulate_machine_rejects_bad_inputs_loudly() {
        let s = service();
        let r = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "bogus")],
            "fft(n=8)",
        ));
        assert_eq!(r.status, 400);
        assert!(
            r.body.contains("IBM BG/Q, Cray XT5, K computer"),
            "{}",
            r.body
        );
        let r = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "IBM BG/Q"), ("sram-sweep", "4:16:4")],
            "fft(n=8)",
        ));
        assert_eq!(r.status, 400);
        assert!(r.body.contains("sram-sweep"), "{}", r.body);
        let r = s.handle(&req(
            "POST",
            "/simulate",
            &[("machine", "IBM BG/Q"), ("sram", "0")],
            "fft(n=8)",
        ));
        assert_eq!(r.status, 400);
        assert!(r.body.contains("positive integer"), "{}", r.body);
    }

    #[test]
    fn metrics_track_the_traffic() {
        let s = service();
        s.handle(&req("POST", "/analyze", &[], "diamond"));
        s.handle(&req("POST", "/analyze", &[], "diamond"));
        s.handle(&req("POST", "/analyze", &[], "nonsense!!"));
        let m = s.metrics_text();
        assert!(m.contains("analyze_requests 3"), "{m}");
        assert!(m.contains("cache_hits 1"), "{m}");
        assert!(m.contains("cache_misses 1"), "{m}");
        assert!(m.contains("errors_total 1"), "{m}");
        assert!(m.contains("analyses_performed 1"), "{m}");
    }

    #[test]
    fn shutdown_flag_is_set() {
        let s = service();
        let r = s.handle(&req("POST", "/shutdown", &[], ""));
        assert_eq!(r.status, 200);
        assert!(r.shutdown);
    }
}
