//! Minimal HTTP/1.1 wire handling over `std::net::TcpStream`.
//!
//! Hand-rolled on purpose: the workspace vendors its few dependencies
//! (no registry access), so the daemon speaks just enough HTTP/1.1 for
//! its endpoints — request line, headers, `Content-Length` bodies — with
//! the hostile-input guards a long-running service needs: a read
//! timeout on every socket (slow-loris requests get 408, the daemon
//! never wedges on a stalled peer), a bounded header section, and a
//! bounded body size (oversized uploads get 413 before they are read).
//! Every response carries `Connection: close`; one request per
//! connection keeps the attack surface and the state machine tiny.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection input limits, set once from the server configuration.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the request line + headers, in bytes.
    pub header_bytes: usize,
    /// Maximum `Content-Length` accepted, in bytes.
    pub body_bytes: usize,
    /// Socket read timeout; an incomplete request past this is a 408.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            header_bytes: 8 * 1024,
            body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A parsed request: method, path, decoded query parameters, and the
/// UTF-8 body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …) exactly as sent.
    pub method: String,
    /// The path component of the request target (before any `?`).
    pub path: String,
    /// Decoded `key=value` query parameters, in request order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The last value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one HTTP status
/// in the server's error path.
#[derive(Debug)]
pub enum RecvError {
    /// The peer stalled past the read timeout (→ 408).
    Timeout,
    /// The header section exceeded [`Limits::header_bytes`] (→ 431).
    HeaderTooLarge {
        /// The configured limit, for the error message.
        limit: usize,
    },
    /// The declared `Content-Length` exceeded [`Limits::body_bytes`]
    /// (→ 413).
    BodyTooLarge {
        /// The configured limit, for the error message.
        limit: usize,
    },
    /// The bytes on the wire are not a parseable HTTP/1.1 request
    /// (→ 400).
    Malformed(String),
    /// The peer closed the connection before a full request arrived;
    /// nothing to respond to.
    Closed,
    /// A socket error other than a timeout; nothing to respond to.
    Io(String),
}

/// Reads one HTTP/1.1 request from `stream` under `limits`.
///
/// Blocks until a full request (headers + declared body) has arrived,
/// the peer closes, a limit trips, or the read timeout fires.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, RecvError> {
    stream
        .set_read_timeout(Some(limits.read_timeout))
        .map_err(|e| RecvError::Io(e.to_string()))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the blank line that ends the headers.
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            if pos > limits.header_bytes {
                return Err(RecvError::HeaderTooLarge {
                    limit: limits.header_bytes,
                });
            }
            break pos;
        }
        if buf.len() > limits.header_bytes {
            return Err(RecvError::HeaderTooLarge {
                limit: limits.header_bytes,
            });
        }
        let n = read_some(stream, &mut chunk)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(RecvError::Closed)
            } else {
                Err(RecvError::Malformed("truncated request head".to_string()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| RecvError::Malformed("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RecvError::Malformed("empty request head".to_string()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RecvError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header line {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RecvError::Malformed(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > limits.body_bytes {
        return Err(RecvError::BodyTooLarge {
            limit: limits.body_bytes,
        });
    }
    // Phase 2: the body — whatever followed the blank line plus the rest.
    let body_start = header_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk)?;
        if n == 0 {
            return Err(RecvError::Malformed("truncated request body".to_string()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| RecvError::Malformed("request body is not UTF-8".to_string()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query,
        body,
    })
}

/// One `read` call with timeout mapping; retries on `Interrupted`.
fn read_some(stream: &mut TcpStream, chunk: &mut [u8]) -> Result<usize, RecvError> {
    loop {
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(RecvError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecvError::Io(e.to_string())),
        }
    }
}

/// Position of the `\r\n\r\n` separator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a raw query string into decoded `key=value` pairs. A key
/// without `=` maps to the empty string (so `?hierarchical` works like
/// `?hierarchical=true`... the service treats presence as truthy).
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-for-space; bad escapes pass through
/// verbatim (the service rejects unknown parameter values loudly anyway).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(c @ b'0'..=b'9') => Some(c - b'0'),
        Some(c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Writes one complete response and flushes. Every response closes the
/// connection (`Connection: close`); returns the body size written so
/// the access log can record it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<usize> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(body.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes_pairs() {
        let q = parse_query("sram=64&spec=jacobi%28n%3D8%29&flag&x=a+b");
        assert_eq!(q[0], ("sram".to_string(), "64".to_string()));
        assert_eq!(q[1], ("spec".to_string(), "jacobi(n=8)".to_string()));
        assert_eq!(q[2], ("flag".to_string(), String::new()));
        assert_eq!(q[3], ("x".to_string(), "a b".to_string()));
    }

    #[test]
    fn bad_percent_escapes_pass_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
        assert_eq!(percent_decode("%41"), "A");
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
