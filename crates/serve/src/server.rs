//! The threaded TCP front end: accept loop, fixed worker pool, graceful
//! shutdown.
//!
//! The shape is deliberately boring: one non-blocking accept loop feeds
//! a bounded queue drained by a fixed pool of worker threads, each
//! handling one connection at a time end to end (read → route → write →
//! close). No connection reuse, no speculative reads — a slow or
//! hostile client can cost at most one worker for one read-timeout.
//!
//! Shutdown is an endpoint, not a signal: `POST /shutdown` flips the
//! stop flag after its response is written, the accept loop stops
//! accepting, the workers drain every connection already accepted, and
//! [`Server::run`] returns a [`ServeSummary`]. (A SIGTERM handler would
//! need `unsafe`/libc, which this workspace forbids — the endpoint is
//! the portable, safe-Rust graceful path, and is what the CI smoke and
//! the loadgen harness use.)

use crate::http::{read_request, write_response, Limits, RecvError};
use crate::service::{reason_phrase, Service, ServiceConfig};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Everything `repro serve` can configure.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`--addr`); `:0` picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads (`--workers`; `0` =
    /// `std::thread::available_parallelism`).
    pub workers: usize,
    /// Socket limits: header/body caps and the read timeout.
    pub limits: Limits,
    /// Compute-layer knobs: admission limit, pipeline threads, cache caps.
    pub service: ServiceConfig,
    /// Emit one structured log line per request to stderr.
    pub log: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            limits: Limits::default(),
            service: ServiceConfig::default(),
            log: true,
        }
    }
}

/// What a completed [`Server::run`] hands back, for the CLI's exit line.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Requests handled (including error responses).
    pub requests: u64,
    /// Connections that died before a full request arrived.
    pub dead_connections: u64,
}

/// A bound, not-yet-running server. Splitting bind from run lets tests
/// and the loadgen harness learn the ephemeral port before serving.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    service: Service,
}

/// The connection queue the accept loop feeds and the workers drain.
#[derive(Default)]
struct Queue {
    ready: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
}

impl Server {
    /// Binds `config.addr` and prepares the service (empty cache).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let service = Service::new(config.service);
        Ok(Server {
            listener,
            local_addr,
            config,
            service,
        })
    }

    /// The actually-bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until `POST /shutdown`: accept loop on the calling thread,
    /// `workers` handler threads. In-flight and already-accepted
    /// connections are drained before returning; connections arriving
    /// after the stop flag are never accepted.
    pub fn run(&self) -> std::io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        let workers = match self.config.workers {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        };
        let queue = Queue::default();
        let stop = AtomicBool::new(false);
        let requests = std::sync::atomic::AtomicU64::new(0);
        let dead = std::sync::atomic::AtomicU64::new(0);
        // dmc-lint: allow(s2) -- long-lived worker pool draining a shared connection queue, not an indexed fan-out-and-join; report determinism is owned by the service layer (same request -> same bytes at any worker count), which the serve_http tests pin across --workers 1/2/4
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let mut ready = queue.ready.lock().unwrap_or_else(PoisonError::into_inner);
                    let stream = loop {
                        if let Some(s) = ready.pop_front() {
                            break s;
                        }
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        ready = queue
                            .wake
                            .wait(ready)
                            .unwrap_or_else(PoisonError::into_inner);
                    };
                    drop(ready);
                    match self.handle_connection(stream, &stop) {
                        Ok(()) => {
                            requests.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(()) => {
                            dead.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // Accept loop: non-blocking so the stop flag is honored
            // within one poll interval even when no client ever connects.
            while !stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let mut ready = queue.ready.lock().unwrap_or_else(PoisonError::into_inner);
                        ready.push_back(stream);
                        drop(ready);
                        queue.wake.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("[serve] accept error: {e}");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            // Drain: wake every worker; each exits once the queue is
            // empty and the stop flag is up.
            queue.wake.notify_all();
        });
        Ok(ServeSummary {
            requests: requests.load(Ordering::Relaxed),
            dead_connections: dead.load(Ordering::Relaxed),
        })
    }

    /// One connection end to end. `Ok` = a response was written (even an
    /// error response); `Err` = the peer gave us nothing to respond to.
    fn handle_connection(&self, mut stream: TcpStream, stop: &AtomicBool) -> Result<(), ()> {
        // dmc-lint: allow(d2) -- wall-clock latency for the structured access log only; never part of a response body or cache key
        let t0 = std::time::Instant::now();
        let req = match read_request(&mut stream, &self.config.limits) {
            Ok(req) => req,
            Err(e) => {
                let (status, body) = match e {
                    RecvError::Timeout => (
                        408,
                        format!(
                            "request incomplete after {:?} (read timeout)\n",
                            self.config.limits.read_timeout
                        ),
                    ),
                    RecvError::HeaderTooLarge { limit } => (
                        431,
                        format!("request head exceeds the {limit}-byte limit\n"),
                    ),
                    RecvError::BodyTooLarge { limit } => (
                        413,
                        format!("request body exceeds the {limit}-byte limit\n"),
                    ),
                    RecvError::Malformed(why) => (400, format!("malformed request: {why}\n")),
                    RecvError::Closed | RecvError::Io(_) => return Err(()),
                };
                let _ = write_response(
                    &mut stream,
                    status,
                    reason_phrase(status),
                    "text/plain; charset=utf-8",
                    &body,
                );
                if self.config.log {
                    eprintln!(
                        "[serve] ? ? -> {status} outcome=- bytes={} ms={:.1}",
                        body.len(),
                        t0.elapsed().as_secs_f64() * 1e3
                    );
                }
                return Ok(());
            }
        };
        let reply = self.service.handle(&req);
        let written = write_response(
            &mut stream,
            reply.status,
            reply.reason,
            reply.content_type,
            &reply.body,
        );
        if reply.shutdown {
            // Flip the flag only after the response bytes are out, so
            // the shutting-down client always hears the acknowledgement.
            stop.store(true, Ordering::SeqCst);
        }
        if self.config.log {
            let outcome = reply.outcome.map_or("-", |o| o.label());
            eprintln!(
                "[serve] {} {} -> {} outcome={outcome} bytes={} ms={:.1}",
                req.method,
                req.path,
                reply.status,
                reply.body.len(),
                t0.elapsed().as_secs_f64() * 1e3
            );
        }
        written.map(|_| ()).map_err(|_| ())
    }
}
