//! The content-addressed result cache: bounded LRU + single-flight.
//!
//! The cache is why the daemon exists: a million identical requests for
//! `jacobi(n=1024,d=2,t=64)` must cost one analysis. Three properties
//! carry that:
//!
//! * **Content-addressed.** Keys are canonical renders — the kernel
//!   spec's [`render`](dmc_kernels::catalog::KernelSpec::render) (every
//!   parameter, declared order) or the FNV-1a
//!   [`content_hash`](dmc_cdag::Cdag::content_hash) of an uploaded
//!   graph's canonical text — plus the analysis options that change the
//!   report. Two requests that *mean* the same analysis hit the same
//!   slot no matter how they spelled it. (`DefaultHasher` is off the
//!   table: its per-process seed would make keys unstable across runs,
//!   against lint rule D1's spirit.)
//! * **Single-flight.** A concurrent duplicate of an in-flight request
//!   waits on the one running analysis instead of stampeding: the first
//!   miss plants an in-flight marker under the lock, computes unlocked,
//!   and wakes waiters when the value lands. Exactly one analysis per
//!   distinct key, at any concurrency.
//! * **Bounded.** Entry-count and byte caps with LRU eviction over a
//!   `BTreeMap` plus a recency index (monotonic touch ticks), so the
//!   daemon's memory is a configuration knob, not a function of uptime.
//!
//! Everything is deterministic given the request history: ticks are a
//! counter, not wall-clock, and iteration only ever touches `BTreeMap`s.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Size caps for [`ResultCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum number of cached results (`--cache-entries`).
    pub max_entries: usize,
    /// Maximum total bytes of cached bodies (`--cache-bytes`). A single
    /// body larger than this is served but never cached.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// How a lookup was served, for metrics and the per-request log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The value was cached before the request arrived.
    Hit,
    /// This request ran the analysis (and cached the result).
    Miss,
    /// The request arrived while an identical one was in flight and
    /// waited for its result instead of recomputing.
    Coalesced,
}

impl Outcome {
    /// The fixed label used in log lines and tests.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
        }
    }
}

/// A monotonic snapshot of the cache counters for `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups served from a ready entry.
    pub hits: u64,
    /// Lookups that ran the underlying computation.
    pub misses: u64,
    /// Lookups that waited on an identical in-flight computation.
    pub coalesced: u64,
    /// Entries dropped to respect the size caps.
    pub evictions: u64,
    /// Ready entries currently cached.
    pub entries: usize,
    /// Total bytes of cached bodies.
    pub bytes: usize,
}

/// One slot: either a finished body or a marker that some worker is
/// computing it right now.
enum Slot {
    InFlight,
    Ready {
        body: std::sync::Arc<String>,
        tick: u64,
    },
}

#[derive(Default)]
struct Inner {
    map: BTreeMap<String, Slot>,
    /// touch-tick → key, ready entries only; the leftmost entry is the
    /// least-recently-used eviction candidate.
    recency: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

/// The bounded, single-flight result cache. See the module docs.
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    config: CacheConfig,
}

impl ResultCache {
    /// An empty cache with the given caps.
    pub fn new(config: CacheConfig) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            config,
        }
    }

    /// Lock helper: a poisoned mutex only means another worker panicked
    /// mid-update; the inner state is a plain map that is consistent
    /// between statements, so recover the guard instead of wedging the
    /// daemon.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up; on a miss runs `compute` exactly once (per key,
    /// across all concurrent callers) and caches a successful result.
    ///
    /// Concurrent callers with the same key while the computation runs
    /// block until it finishes and share its result ([`Outcome::Coalesced`]).
    /// `compute` runs **without** the cache lock held, so distinct keys
    /// never serialize each other. Errors are not cached: the marker is
    /// removed and one waiter (if any) retries the computation.
    ///
    /// `compute` must not panic — the service layer catches panics and
    /// converts them to an `Err` before they reach the cache.
    pub fn get_or_compute<E>(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<String, E>,
    ) -> Result<(std::sync::Arc<String>, Outcome), E> {
        let mut waited = false;
        let mut inner = self.lock();
        loop {
            match inner.map.get(key) {
                Some(Slot::Ready { body, .. }) => {
                    let body = std::sync::Arc::clone(body);
                    if waited {
                        // The coalesced counter was already bumped when
                        // this caller started waiting.
                    } else {
                        inner.hits += 1;
                    }
                    touch(&mut inner, key);
                    return Ok((
                        body,
                        if waited {
                            Outcome::Coalesced
                        } else {
                            Outcome::Hit
                        },
                    ));
                }
                Some(Slot::InFlight) => {
                    if !waited {
                        inner.coalesced += 1;
                        waited = true;
                    }
                    inner = self
                        .ready
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    inner.map.insert(key.to_string(), Slot::InFlight);
                    inner.misses += 1;
                    break;
                }
            }
        }
        drop(inner);
        let result = compute();
        let mut inner = self.lock();
        match result {
            Ok(body) => {
                let body = std::sync::Arc::new(body);
                if body.len() <= self.config.max_bytes {
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.bytes += body.len();
                    inner.map.insert(
                        key.to_string(),
                        Slot::Ready {
                            body: std::sync::Arc::clone(&body),
                            tick,
                        },
                    );
                    inner.recency.insert(tick, key.to_string());
                    self.evict_over_caps(&mut inner);
                } else {
                    // Too big to ever cache: serve it, drop the marker.
                    inner.map.remove(key);
                }
                self.ready.notify_all();
                Ok((body, Outcome::Miss))
            }
            Err(e) => {
                inner.map.remove(key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Pops least-recently-touched entries until both caps hold.
    fn evict_over_caps(&self, inner: &mut Inner) {
        while inner.recency.len() > self.config.max_entries || inner.bytes > self.config.max_bytes {
            let Some((_, key)) = inner.recency.pop_first() else {
                return;
            };
            if let Some(Slot::Ready { body, .. }) = inner.map.remove(&key) {
                inner.bytes -= body.len();
            }
            inner.evictions += 1;
        }
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            entries: inner.recency.len(),
            bytes: inner.bytes,
        }
    }
}

/// Moves `key`'s recency tick to the top (most recently used).
fn touch(inner: &mut Inner, key: &str) {
    inner.tick += 1;
    let new_tick = inner.tick;
    if let Some(Slot::Ready { tick, .. }) = inner.map.get_mut(key) {
        let old = *tick;
        *tick = new_tick;
        inner.recency.remove(&old);
        inner.recency.insert(new_tick, key.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small(max_entries: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            max_entries,
            max_bytes: 1 << 20,
        })
    }

    #[test]
    fn second_lookup_is_a_hit_and_computes_once() {
        let cache = small(8);
        let computed = AtomicUsize::new(0);
        let f = || -> Result<String, ()> {
            computed.fetch_add(1, Ordering::Relaxed);
            Ok("report".to_string())
        };
        let (a, o1) = cache.get_or_compute("k", f).unwrap();
        let (b, o2) = cache
            .get_or_compute("k", || -> Result<String, ()> {
                computed.fetch_add(1, Ordering::Relaxed);
                Ok("other".to_string())
            })
            .unwrap();
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert_eq!(*a, *b);
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_respects_entry_cap_and_recency() {
        let cache = small(2);
        let put = |k: &str| {
            cache
                .get_or_compute(k, || Ok::<_, ()>(format!("body-{k}")))
                .unwrap()
        };
        put("a");
        put("b");
        put("a"); // touch a: b is now LRU
        put("c"); // evicts b
        assert_eq!(put("a").1, Outcome::Hit);
        assert_eq!(put("c").1, Outcome::Hit);
        assert_eq!(put("b").1, Outcome::Miss, "b was evicted");
        assert_eq!(cache.stats().evictions, 2); // b once, then a or c for b's re-insert
    }

    #[test]
    fn byte_cap_evicts_and_oversized_bodies_bypass() {
        let cache = ResultCache::new(CacheConfig {
            max_entries: 100,
            max_bytes: 10,
        });
        let (_, o) = cache
            .get_or_compute("big", || Ok::<_, ()>("x".repeat(64)))
            .unwrap();
        assert_eq!(o, Outcome::Miss);
        assert_eq!(cache.stats().entries, 0, "oversized body never cached");
        cache
            .get_or_compute("s1", || Ok::<_, ()>("12345".to_string()))
            .unwrap();
        cache
            .get_or_compute("s2", || Ok::<_, ()>("123456".to_string()))
            .unwrap();
        let s = cache.stats();
        assert!(s.bytes <= 10, "{} bytes cached", s.bytes);
        assert!(s.evictions >= 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = small(8);
        let r = cache.get_or_compute("k", || Err::<String, _>("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let (_, o) = cache
            .get_or_compute("k", || Ok::<_, &str>("fine".to_string()))
            .unwrap();
        assert_eq!(o, Outcome::Miss, "error left no entry behind");
    }

    #[test]
    fn single_flight_coalesces_concurrent_duplicates() {
        let cache = small(8);
        let computed = AtomicUsize::new(0);
        let results: Vec<Outcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let (body, outcome) = cache
                            .get_or_compute("shared", || {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Hold the in-flight window open long
                                // enough for others to pile in.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                Ok::<_, ()>("the one result".to_string())
                            })
                            .unwrap();
                        assert_eq!(*body, "the one result");
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            1,
            "exactly one computation"
        );
        assert_eq!(
            results.iter().filter(|o| **o == Outcome::Miss).count(),
            1,
            "{results:?}"
        );
        assert!(results
            .iter()
            .all(|o| matches!(o, Outcome::Miss | Outcome::Coalesced | Outcome::Hit)));
    }
}
