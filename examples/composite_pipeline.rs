//! The Section-3 motivating example, executed: why per-stage I/O analysis
//! over-estimates composite pipelines, and how the RBW decomposition
//! theorems fix it.
//!
//! ```text
//! cargo run --example composite_pipeline
//! ```

use dmc::cdag::topo::topological_order;
use dmc::core::bounds::decompose::{decomposition_sum, untag_inputs};
use dmc::core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc::core::bounds::IoBound;
use dmc::core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc::kernels::composite::{
    composite, composite_hong_kung_achievable_io, composite_per_stage_io,
};

fn main() {
    let n = 6;
    let s = (4 * n + 4) as u64;
    let g = composite(n);
    println!(
        "composite CDAG (p·qT, r·sT, A·B, sum) with N = {n}: |V| = {}, |E| = {}",
        g.num_vertices(),
        g.num_edges()
    );

    // Naive per-stage accounting (what Section 3 warns against): the
    // divergence from the achievable 4N+1 is polynomial in N.
    println!("\nN      per-stage sum   HK-achievable 4N+1   ratio");
    for big_n in [16usize, 64, 256, 1024] {
        let s_big = (4 * big_n + 4) as u64;
        let per = composite_per_stage_io(big_n, s_big);
        let ach = composite_hong_kung_achievable_io(big_n) as f64;
        println!("{big_n:<6} {per:<15.0} {ach:<20.0} {:.1}x", per / ach);
    }
    let per_stage = composite_per_stage_io(n, s);

    // A real RBW execution with S = 4N + 4 pebbles. The 4N+1 figure needs
    // Hong–Kung recomputation of A/B elements; RBW forbids it, so the
    // executed game pays spills — the gap is the price of no-recompute.
    let order = topological_order(&g);
    let exec = certified_upper_bound(&g, s as usize, &order, EvictionPolicy::Belady)
        .expect("budget suffices");
    println!(
        "\nexecuted RBW game at N = {n} (no recomputation), S = 4N+4: {exec} I/O\n\
         (HK with recomputation would need only {})",
        composite_hong_kung_achievable_io(n)
    );

    // Sound composite lower bound via Theorem 2: decompose and sum.
    // Blocks: stage A+B multiplies, stage C, the final sum.
    let nn = g.num_vertices();
    let inputs = 4 * n;
    let stage_ab_end = inputs + 2 * n * n;
    let assignment: Vec<usize> = (0..nn)
        .map(|i| {
            if i < stage_ab_end {
                0
            } else if i < nn - (n * n - 1) {
                1
            } else {
                2
            }
        })
        .collect();
    let pieces = dmc::core::bounds::decompose::decompose_cdag(&g, &assignment, 3);
    let bounds: Vec<IoBound> = pieces
        .iter()
        .map(|p| {
            let wavefront =
                auto_wavefront_bound(&untag_inputs(&p.cdag), s, AnchorStrategy::PerLevel);
            let trivial = IoBound::trivial(&p.cdag);
            dmc::core::bounds::best_lower_bound([wavefront, trivial]).expect("two candidates")
        })
        .collect();
    let total = decomposition_sum(&bounds);
    println!(
        "\nTheorem-2 decomposition lower bound (3 stages, best of Lemma-2 and\n\
         trivial per stage): {:.0}",
        total.value
    );
    assert!(
        total.value <= exec as f64,
        "a sound LB cannot exceed a real game"
    );
    println!(
        "\ntakeaway: per-stage accounting ({per_stage:.0} at N = {n}, growing ~N^2.5)\n\
         wildly over-estimates the composite optimum (4N+1 = {}), while the\n\
         Theorem-2 decomposition bound ({:.0}) stays soundly *below* the real\n\
         execution ({exec}) — composable and correct.",
        composite_hong_kung_achievable_io(n),
        total.value
    );
}
