//! Theorem 10 made concrete: simulated DRAM traffic of 1-D Jacobi under
//! untiled vs skew-tiled schedules, against the paper's lower bound.
//!
//! ```text
//! cargo run --release --example stencil_tiling
//! ```

use dmc::kernels::grid::Stencil;
use dmc::kernels::jacobi::{jacobi_cdag, jacobi_io_lower_bound};
use dmc::machine::{Level, MemoryHierarchy};
use dmc::sim::schedule::{by_level, tiled_jacobi_1d};
use dmc::sim::simulate;

fn main() {
    let (n, t, s1) = (1024usize, 128usize, 64u64);
    println!("1-D Jacobi, n = {n}, T = {t}, cache = {s1} words\n");
    let j = jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    let h = MemoryHierarchy::new(vec![
        Level::new("cache", 1, s1),
        Level::new("DRAM", 1, u64::MAX),
    ])
    .expect("valid hierarchy");
    let owner = vec![0usize; j.cdag.num_vertices()];
    let lb = jacobi_io_lower_bound(n, 1, t, 1, s1);

    // Write-backs are schedule-independent in the CDAG model (every value
    // is a distinct word that reaches DRAM once) — the schedule-dependent
    // signal is the read traffic, which the pebble-game bounds constrain.
    println!(
        "{:<22} {:>11} {:>12} {:>10}",
        "schedule", "DRAM reads", "total words", "reads/LB"
    );
    let untiled = simulate(&j.cdag, &h, &by_level(&j.cdag), &owner);
    println!(
        "{:<22} {:>11} {:>12} {:>9.1}x",
        "by-level (untiled)",
        untiled.total_dram_reads(),
        untiled.total_dram_traffic(),
        untiled.total_dram_reads() as f64 / lb
    );
    let mut best = u64::MAX;
    for w in [4usize, 8, 16, 24] {
        let r = simulate(&j.cdag, &h, &tiled_jacobi_1d(&j, w), &owner);
        best = best.min(r.total_dram_reads());
        println!(
            "{:<22} {:>11} {:>12} {:>9.1}x",
            format!("skew-tiled w = {w}"),
            r.total_dram_reads(),
            r.total_dram_traffic(),
            r.total_dram_reads() as f64 / lb
        );
    }
    println!(
        "{:<22} {:>11} {:>12} {:>10}",
        "Theorem-10 LB", lb as u64, "-", "1.0x"
    );
    assert!(
        untiled.total_dram_traffic() as f64 >= lb,
        "simulated traffic may never beat the bound"
    );
    println!(
        "\ntiling recovers the (2S)-reuse the bound proves necessary: best tiled\n\
         schedule reads {:.1}x the lower bound, untiled reads {:.1}x — a {:.1}x\n\
         reduction from temporal blocking alone.",
        best as f64 / lb,
        untiled.total_dram_reads() as f64 / lb,
        untiled.total_dram_reads() as f64 / best as f64
    );
}
