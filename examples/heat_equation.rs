//! The paper's Section-5.1 model problem end to end: discretize the 1-D
//! heat equation (Figure 2), march it with Crank–Nicolson over the
//! tridiagonal system (Equation 11), and validate against the analytic
//! solution.
//!
//! ```text
//! cargo run --example heat_equation
//! ```

use dmc::solvers::heat::HeatProblem;
use dmc::solvers::vector::max_abs_diff;

fn sparkline(u: &[f64]) -> String {
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    // Fixed scale (initial peak temperature = 1) so cooling is visible.
    u.iter()
        .map(|&v| LEVELS[(v.clamp(0.0, 1.0) * (LEVELS.len() - 1) as f64) as usize])
        .collect()
}

fn main() {
    let p = HeatProblem::new(63, 5e-5);
    println!(
        "1-D heat equation: n = {}, h = {:.4}, dt = {:.1e}, mesh ratio a = {:.2}",
        p.n,
        p.h(),
        p.dt,
        p.mesh_ratio()
    );
    let mut u = p.sine_initial_condition();
    println!("\ntemperature profile over time (hot bar cooling through its ends):");
    println!("t=0.0000  |{}|", sparkline(&u));
    let chunk = 400;
    for step in 1..=6 {
        u = p.run(&u, chunk);
        let t = (step * chunk) as f64 * p.dt;
        println!("t={t:.4}  |{}|", sparkline(&u));
    }
    // Validation against separation of variables.
    let total_steps = 6 * chunk;
    let exact = p.analytic_sine_mode(total_steps as f64 * p.dt);
    let err = max_abs_diff(&u, &exact);
    println!("\nmax error vs analytic e^(-pi^2 t)·sin(pi x): {err:.3e}");
    assert!(err < 1e-3, "discretization error out of tolerance");
    println!("Crank–Nicolson matches the analytic solution.");
}
