//! Quickstart: build a CDAG, bound its data movement, play the games.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dmc::cdag::topo::topological_order;
use dmc::cdag::CdagBuilder;
use dmc::core::bounds::decompose::untag_inputs;
use dmc::core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc::core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc::core::games::optimal::{optimal_io, GameKind};

fn main() {
    // 1. Describe a computation as a CDAG: a little 2-stage reduction.
    //    x, y are inputs; four intermediates; one output.
    let mut b = CdagBuilder::new();
    let x = b.add_input("x");
    let y = b.add_input("y");
    let s = b.add_op("x+y", &[x, y]);
    let t = b.add_op("x*y", &[x, y]);
    let u = b.add_op("s^2", &[s]);
    let v = b.add_op("t^2", &[t]);
    let out = b.add_op("u+v", &[u, v]);
    b.tag_output(out);
    let g = b.build().expect("acyclic");
    println!("CDAG: {g:?}");

    // 2. Certified lower bound via the min-cut wavefront method (Lemma 2),
    //    after untagging inputs (Theorem 3 makes the bound transfer).
    let s_budget = 3u64;
    let lb = auto_wavefront_bound(&untag_inputs(&g), s_budget, AnchorStrategy::All);
    println!(
        "Lemma-2 lower bound with S = {s_budget}: {} ({})",
        lb.value, lb.provenance.note
    );

    // 3. Exact optimum by exhaustive search (the graph is tiny).
    let opt = optimal_io(&g, s_budget as usize, GameKind::Rbw).expect("solvable");
    println!("exact optimal RBW I/O: {opt}");

    // 4. Heuristic upper bound: play a real game with Belady eviction.
    let order = topological_order(&g);
    let ub = certified_upper_bound(&g, s_budget as usize, &order, EvictionPolicy::Belady)
        .expect("budget suffices");
    println!("Belady-executor upper bound: {ub}");

    assert!(lb.value <= opt as f64 && opt <= ub);
    println!("sandwich holds: {} <= {opt} <= {ub}", lb.value);

    // 5. Render the CDAG for inspection.
    println!("\nGraphviz:\n{}", dmc::cdag::dot::to_dot(&g));
}
