//! The paper's Section-5 analysis end to end: pick an algorithm and a
//! machine, and decide where the bandwidth wall is (Equations 7–10).
//!
//! ```text
//! cargo run --example machine_balance
//! ```

use dmc::core::analysis::analyze;
use dmc::kernels::profile::{cg_profile, gmres_profile, jacobi_profile};
use dmc::machine::specs;

fn main() {
    println!("{}", specs::format_table1());

    let machines = specs::table1_machines();
    let n = 1000;

    println!("CG (3-D, n = {n}) — vertical LB ratio 0.3 words/FLOP:");
    let p = cg_profile(n, 2048);
    for m in &machines {
        println!("  {}", analyze(&p, m).row());
    }

    println!("\nGMRES (3-D, n = {n}) — vertical ratio 6/(m+20):");
    for m_krylov in [10usize, 100] {
        println!("  m = {m_krylov}:");
        let p = gmres_profile(n, m_krylov, 2048);
        for m in &machines {
            println!("    {}", analyze(&p, m).row());
        }
    }

    println!("\nJacobi stencils on BG/Q — the bandwidth wall moves with dimension:");
    let bgq = specs::ibm_bgq();
    for d in 1..=6 {
        let p = jacobi_profile(n, d, 2048, bgq.llc_words());
        let r = analyze(&p, &bgq);
        println!(
            "  d = {d}: LB {:.5} UB {:.5} words/FLOP -> {}",
            p.vertical_lb_per_flop.expect("profile sets LB"),
            p.vertical_ub_per_flop.expect("profile sets UB"),
            r.vertical
        );
    }
    println!(
        "\ncritical dimension on BG/Q DRAM->L2: d* = {:.2} (paper's printed rule: {:.2})",
        dmc::kernels::jacobi::jacobi_max_unbound_dimension(bgq.vertical_balance(), bgq.llc_words()),
        dmc::kernels::jacobi::jacobi_paper_printed_dimension(bgq.llc_words()),
    );
}
