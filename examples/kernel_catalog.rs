//! Kernel catalog: from a spec string to a full pipeline report.
//!
//! ```text
//! cargo run --example kernel_catalog
//! ```

use dmc::core::pipeline::{Analyzer, AnalyzerConfig};
use dmc::kernels::catalog::{ProfileContext, Registry};

fn main() {
    let registry = Registry::shared();

    // 1. Discover what is available (this is what `repro list` prints).
    println!("registered kernels: {}\n", registry.names().join(", "));

    // 2. One API from spec string to CDAG: parse, inspect, build.
    let spec = registry
        .parse("jacobi(n=8,d=2,t=4)")
        .expect("valid spec — try `repro list` for the grammar");
    println!("canonical spec: {}", spec.render());
    let g = spec.build();
    println!(
        "built CDAG: |V| = {}, |E| = {}",
        g.num_vertices(),
        g.num_edges()
    );

    // 3. Straight into the unified pipeline: the report carries the spec
    //    and the kernel's analytic bounds next to the certified one.
    let report = Analyzer::new(AnalyzerConfig {
        sram: 8,
        ..AnalyzerConfig::default()
    })
    .analyze_kernel(&spec);
    println!("\n{report}");

    // 4. The Section-5 profile hook (machine-balance input) where the
    //    paper derives one for the family.
    let ctx = ProfileContext {
        nodes: 2048,
        sram: 4_000_000,
    };
    if let Some(profile) = spec.kernel().profile(spec.values(), &ctx) {
        println!(
            "profile '{}': vertical LB/flop = {:?}",
            profile.name, profile.vertical_lb_per_flop
        );
    }

    // 5. Errors are loud and name the alternatives.
    let err = registry.parse("jacobi(stencil=hex)").unwrap_err();
    println!("\nbad spec rejected: {err}");
}
