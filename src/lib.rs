//! # dmc — Data Movement Complexity of Computational DAGs
//!
//! Facade crate re-exporting the whole workspace. See the `README.md` for a
//! tour and `DESIGN.md` for the paper-to-module map.
//!
//! * [`cdag`] — graph substrate (CDAGs, reachability, min-cuts).
//! * [`core`] — pebble games, S-partitions, decomposition, lower bounds.
//! * [`machine`] — machine models and balance parameters.
//! * [`kernels`] — CDAG generators for the analyzed algorithms.
//! * [`solvers`] — numerical solvers (CG, GMRES, Jacobi, heat equation).
//! * [`sim`] — execution-driven memory-hierarchy simulator.

#![forbid(unsafe_code)]

pub use dmc_cdag as cdag;
pub use dmc_core as core;
pub use dmc_kernels as kernels;
pub use dmc_machine as machine;
pub use dmc_sim as sim;
pub use dmc_solvers as solvers;
