//! End-to-end tests of the hierarchical analysis mode: dominance of the
//! flat pipeline under default options across the whole kernel catalog,
//! RBW-optimum soundness of the opt-in composed bound, thread-count
//! invariance of the full hierarchy report, and the configurable
//! admission limit behind `repro analyze --max-vertices`.

use dmc::cdag::Cdag;
use dmc::core::games::optimal::{optimal_io, GameKind};
use dmc::core::pipeline::{Analyzer, AnalyzerConfig, HierarchicalOptions};
use dmc::kernels::catalog::Registry;
use dmc::kernels::random::{random_layered, RandomDagConfig};
use proptest::prelude::*;

fn analyzer(sram: u64, threads: usize) -> Analyzer {
    Analyzer::new(AnalyzerConfig {
        sram,
        threads,
        ..AnalyzerConfig::default()
    })
}

/// With default options the hierarchical bound is dominated by the flat
/// bound **by construction** (per-cluster trivial bounds sum to the
/// whole-graph trivial bound and the whole-graph wavefront is shared
/// with the flat portfolio), and both are certified on the same graph.
/// Check the invariant across every catalog kernel at its default spec.
#[test]
fn hierarchical_dominated_by_flat_across_catalog() {
    let registry = Registry::shared();
    for kernel in registry.iter() {
        let spec = registry
            .defaults(kernel.name())
            .expect("every kernel has valid defaults");
        let g = spec.build();
        let flat = analyzer(8, 1).analyze(&g);
        let hier = analyzer(8, 1).analyze_hierarchical(&g, &HierarchicalOptions::default());
        assert!(
            hier.bound.value <= flat.bound.value,
            "{}: hierarchical {} exceeds flat {}",
            kernel.name(),
            hier.bound.value,
            flat.bound.value
        );
        let h = hier.hierarchy.as_ref().expect("hierarchy level present");
        assert!(h.cluster_count >= 1);
        assert_eq!(
            h.clusters.iter().map(|c| c.vertices).sum::<usize>(),
            g.num_vertices(),
            "{}: clusters must partition the vertex set",
            kernel.name()
        );
        assert!(
            h.composed.value <= hier.bound.value,
            "{}: the certified bound folds the composition",
            kernel.name()
        );
    }
}

/// The admission limit is enforced centrally and loudly: a spec whose
/// estimated size exceeds the ceiling is rejected at parse time with an
/// error that names the remedy, and the same spec is admitted when the
/// caller raises the ceiling.
#[test]
fn admission_limit_is_configurable_and_loud() {
    let registry = Registry::shared();
    let spec = "random(layers=64,width=65536,deg=3,seed=7)";
    let err = registry
        .parse_within(spec, 1 << 20)
        .expect_err("4.2M vertices must not pass a 1M ceiling");
    let msg = err.to_string();
    assert!(msg.contains("vertices"), "unhelpful error: {msg}");
    assert!(
        msg.contains("--max-vertices") || msg.contains("parse_within"),
        "error must name the remedy: {msg}"
    );
    assert!(registry.parse_within(spec, 1 << 23).is_ok());
}

/// Tiny graphs where the exact RBW optimum is computable; the opt-in
/// composed bound (per-cluster wavefronts on) must stay below it.
fn arb_tiny_cdag() -> impl Strategy<Value = Cdag> {
    (2usize..4, 2usize..4, 0.15f64..0.7, 0u64..1000).prop_map(|(layers, width, p, seed)| {
        random_layered(RandomDagConfig {
            layers,
            width,
            deg: 0,
            edge_prob: p,
            seed,
        })
    })
}

fn arb_cdag() -> impl Strategy<Value = Cdag> {
    (2usize..6, 2usize..8, 0.1f64..0.7, 0u64..1000).prop_map(|(layers, width, p, seed)| {
        random_layered(RandomDagConfig {
            layers,
            width,
            deg: 0,
            edge_prob: p,
            seed,
        })
    })
}

/// The strongest opt-in configuration: per-cluster wavefronts on and a
/// forced non-trivial cluster count, so Theorem-2 composition of
/// sub-CDAG wavefronts is actually exercised.
fn strong_opts() -> HierarchicalOptions {
    HierarchicalOptions {
        clusters: Some(3),
        cluster_wavefront_limit: usize::MAX,
        ..HierarchicalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness sandwich: even with per-cluster wavefronts enabled the
    /// hierarchical bound never exceeds the exact RBW optimum.
    #[test]
    fn hierarchical_bound_below_optimal(g in arb_tiny_cdag(), s_extra in 1usize..5) {
        let min_s = g.vertices().map(|v| g.in_degree(v) + 1).max().unwrap_or(1);
        let s = min_s + s_extra;
        let report = analyzer(s as u64, 1).analyze_hierarchical(&g, &strong_opts());
        if let Some(opt) = optimal_io(&g, s, GameKind::Rbw) {
            prop_assert!(
                report.bound.value <= opt as f64,
                "hierarchical {} > optimal {opt}",
                report.bound.value
            );
        }
    }

    /// The full hierarchy report — text and JSON — is bit-identical at
    /// 1, 2, and 4 threads.
    #[test]
    fn hierarchical_invariant_in_threads(g in arb_cdag(), s in 2u64..6) {
        let base = analyzer(s, 1).analyze_hierarchical(&g, &strong_opts());
        for threads in [2usize, 4] {
            let r = analyzer(s, threads).analyze_hierarchical(&g, &strong_opts());
            prop_assert_eq!(r.to_string(), base.to_string());
            prop_assert_eq!(serde::json::to_string(&r), serde::json::to_string(&base));
        }
    }
}
