//! The `.cdag` sample files shipped under `examples/graphs/` must parse,
//! round-trip through `textio` losslessly, and stay in sync with the
//! shapes their headers promise.

use dmc::cdag::textio::{from_text, to_text};
use dmc::cdag::{Cdag, VertexId};
use std::path::PathBuf;

fn read_graph(name: &str) -> (String, Cdag) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/graphs")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let g = from_text(&text).unwrap_or_else(|e| panic!("parse {path:?}: {e}"));
    (text, g)
}

fn assert_round_trips(name: &str) {
    let (_, g) = read_graph(name);
    let g2 = from_text(&to_text(&g)).expect("serialized form re-parses");
    assert_eq!(g.num_vertices(), g2.num_vertices(), "{name}");
    assert_eq!(
        g.edges().collect::<Vec<_>>(),
        g2.edges().collect::<Vec<_>>(),
        "{name}"
    );
    for v in g.vertices() {
        assert_eq!(g.label(v), g2.label(v), "{name}: label of {v}");
        assert_eq!(g.is_input(v), g2.is_input(v), "{name}: input tag of {v}");
        assert_eq!(g.is_output(v), g2.is_output(v), "{name}: output tag of {v}");
    }
}

#[test]
fn every_shipped_graph_round_trips() {
    for name in ["diamond.cdag", "ladder.cdag", "composite.cdag"] {
        assert_round_trips(name);
    }
}

#[test]
fn diamond_exercises_quoting() {
    let (_, g) = read_graph("diamond.cdag");
    assert_eq!(g.num_vertices(), 4);
    assert_eq!(g.num_edges(), 4);
    // The quoted-label corner cases the file exists to exercise.
    assert_eq!(g.label(VertexId(0)), "input #0");
    assert_eq!(g.label(VertexId(1)), "left \"branch\"");
    assert_eq!(g.label(VertexId(2)), "right \\ branch");
    assert_eq!(g.label(VertexId(3)), "join #3 \"d\"");
    assert!(g.is_input(VertexId(0)) && g.is_output(VertexId(3)));
}

#[test]
fn ladder_matches_generator() {
    let (_, g) = read_graph("ladder.cdag");
    let reference = dmc::kernels::chains::ladder(4, 4);
    assert_eq!(g.num_vertices(), reference.num_vertices());
    assert_eq!(
        g.edges().collect::<Vec<_>>(),
        reference.edges().collect::<Vec<_>>()
    );
}

#[test]
fn composite_has_two_components() {
    let (text, g) = read_graph("composite.cdag");
    assert!(text.starts_with('#'), "header comment expected");
    let comps = dmc::cdag::weakly_connected_components(&g);
    assert_eq!(comps.count, 2);
    assert_eq!(comps.sizes(), vec![64, 49]);
}
