//! Measured traffic must respect certified bounds: the simulator sits
//! between lower bounds and real machines.

use dmc::kernels::grid::Stencil;
use dmc::kernels::jacobi::{jacobi_cdag, jacobi_io_lower_bound};
use dmc::machine::{Level, MemoryHierarchy};
use dmc::sim::schedule::{by_level, jacobi_block_owner, tiled_jacobi_1d};
use dmc::sim::simulate;
use dmc_core::parallel::horizontal::ghost_cell_upper_bound;

fn one_proc(s1: u64) -> MemoryHierarchy {
    MemoryHierarchy::new(vec![
        Level::new("L1", 1, s1),
        Level::new("mem", 1, u64::MAX),
    ])
    .unwrap()
}

#[test]
fn jacobi_reads_never_beat_theorem_10() {
    let (n, t, s1) = (256usize, 32usize, 32u64);
    let j = jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    let h = one_proc(s1);
    let owner = vec![0usize; j.cdag.num_vertices()];
    let lb = jacobi_io_lower_bound(n, 1, t, 1, s1);
    for (name, sched) in [
        ("untiled", by_level(&j.cdag)),
        ("tiled8", tiled_jacobi_1d(&j, 8)),
        ("tiled16", tiled_jacobi_1d(&j, 16)),
    ] {
        let r = simulate(&j.cdag, &h, &sched, &owner);
        // Total traffic (reads + writes) dominates the I/O bound.
        assert!(
            r.total_dram_traffic() as f64 >= lb,
            "{name}: measured {} < LB {lb}",
            r.total_dram_traffic()
        );
    }
}

#[test]
fn tiling_cuts_read_traffic() {
    let (n, t, s1) = (256usize, 32usize, 32u64);
    let j = jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    let h = one_proc(s1);
    let owner = vec![0usize; j.cdag.num_vertices()];
    let untiled = simulate(&j.cdag, &h, &by_level(&j.cdag), &owner);
    let tiled = simulate(&j.cdag, &h, &tiled_jacobi_1d(&j, 12), &owner);
    assert!(
        (tiled.total_dram_reads() as f64) < untiled.total_dram_reads() as f64 / 4.0,
        "tiled reads {} vs untiled {}",
        tiled.total_dram_reads(),
        untiled.total_dram_reads()
    );
    // Write-backs are schedule-independent (every value is distinct).
    assert_eq!(
        tiled.total_dram_writebacks(),
        untiled.total_dram_writebacks()
    );
}

#[test]
fn halo_traffic_bounded_by_ghost_formula() {
    let (n, t) = (64usize, 4usize);
    let j = jacobi_cdag(n, 1, t, Stencil::VonNeumann);
    for procs in [2usize, 4, 8] {
        let h = MemoryHierarchy::new(vec![
            Level::new("L1", procs, 32),
            Level::new("mem", procs, u64::MAX),
        ])
        .unwrap();
        let owner = jacobi_block_owner(&j, procs);
        let r = simulate(&j.cdag, &h, &by_level(&j.cdag), &owner);
        let formula_total = ghost_cell_upper_bound(n, 1, procs, t) * procs as f64;
        assert!(
            r.total_horizontal() as f64 <= formula_total + 1e-9,
            "procs={procs}: measured {} > ghost formula {formula_total}",
            r.total_horizontal()
        );
        assert!(r.total_horizontal() > 0, "block runs must exchange halos");
    }
}

#[test]
fn more_cache_never_increases_reads() {
    let j = jacobi_cdag(128, 1, 16, Stencil::VonNeumann);
    let owner = vec![0usize; j.cdag.num_vertices()];
    let sched = tiled_jacobi_1d(&j, 8);
    let mut prev = u64::MAX;
    for s1 in [16u64, 32, 64, 256] {
        let r = simulate(&j.cdag, &one_proc(s1), &sched, &owner);
        assert!(
            r.total_dram_reads() <= prev,
            "S={s1}: reads {} > previous {prev}",
            r.total_dram_reads()
        );
        prev = r.total_dram_reads();
    }
}
