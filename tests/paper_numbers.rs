//! The paper's headline quantitative claims, checked end to end.

use dmc::core::analysis::analyze;
use dmc::kernels::profile::{cg_profile, gmres_profile};
use dmc::kernels::{cg, gmres, jacobi, outer};
use dmc::machine::specs;
use dmc_machine::BandwidthVerdict;

#[test]
fn table1_balance_values() {
    let bgq = specs::ibm_bgq();
    assert!((bgq.vertical_balance() - 0.052).abs() < 0.001);
    assert!((bgq.horizontal_balance() - 0.049).abs() < 0.001);
    let xt5 = specs::cray_xt5();
    assert!((xt5.vertical_balance() - 0.0256).abs() < 0.0005);
    assert!((xt5.horizontal_balance() - 0.058).abs() < 0.001);
}

#[test]
fn cg_headline_ratio_is_0_3() {
    // Section 5.2.3: LB·N/|V| = 6/20 = 0.3 — above every Table-1 balance,
    // so CG is vertically bandwidth-bound everywhere; horizontally clear.
    let p = cg_profile(1000, 2048);
    assert!((p.vertical_lb_per_flop.unwrap() - 0.3).abs() < 1e-12);
    for m in specs::table1_machines() {
        let r = analyze(&p, &m);
        assert_eq!(r.vertical, BandwidthVerdict::BandwidthBound);
        assert_eq!(r.horizontal, BandwidthVerdict::NotBandwidthBound);
    }
}

#[test]
fn cg_lower_bound_formula() {
    // Theorem 8: Q >= 6 n^d T / P.
    assert_eq!(cg::cg_io_lower_bound(1000, 3, 1, 1), 6e9);
    assert_eq!(cg::cg_io_lower_bound(1000, 3, 1, 1000), 6e6);
}

#[test]
fn gmres_ratio_series_crosses_bgq_balance_near_m_95() {
    // Section 5.3.3: 6/(m+20) crosses BG/Q's 0.052 around m ≈ 95.
    assert!(gmres::gmres_vertical_ratio(94) > 0.052);
    assert!(gmres::gmres_vertical_ratio(96) < 0.052);
    let bgq = specs::ibm_bgq();
    assert_eq!(
        analyze(&gmres_profile(1000, 50, 2048), &bgq).vertical,
        BandwidthVerdict::BandwidthBound
    );
    assert_eq!(
        analyze(&gmres_profile(1000, 150, 2048), &bgq).vertical,
        BandwidthVerdict::Inconclusive
    );
}

#[test]
fn jacobi_bound_and_dimensions() {
    // Theorem 10 for 2-D, n=100, T=10, P=1, S=50: n²T/(4√(2S)) = 2500.
    assert!((jacobi::jacobi_io_lower_bound(100, 2, 10, 1, 50) - 2500.0).abs() < 1e-9);
    // BG/Q critical dimension: our rule 10.12, paper's printed rule 4.82;
    // both clear practical stencils (d <= 4).
    let ours = jacobi::jacobi_max_unbound_dimension(0.052, 4_000_000);
    let paper = jacobi::jacobi_paper_printed_dimension(4_000_000);
    assert!(ours > 4.0 && paper > 4.0);
    assert!((paper - 4.83).abs() < 0.05);
}

#[test]
fn outer_product_io_is_capacity_independent() {
    // Section 3: 2N + N² regardless of S.
    assert_eq!(outer::outer_product_exact_io(100), 200 + 10_000);
}

#[test]
fn composite_achievable_io_formula() {
    // Section 3: 4N + 1 with 4N + 4 pebbles under Hong–Kung rules.
    assert_eq!(
        dmc::kernels::composite::composite_hong_kung_achievable_io(1000),
        4001
    );
}
