//! Cross-crate integration: the bound sandwich
//! `lower bound ≤ exact optimum ≤ heuristic game` must hold on every
//! kernel the workspace can generate, for every method combination.

use dmc::cdag::topo::topological_order;
use dmc::core::bounds::decompose::untag_inputs;
use dmc::core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc::core::games::executor::{certified_upper_bound, EvictionPolicy};
use dmc::core::games::optimal::{optimal_io, GameKind};
use dmc::kernels::{chains, fft};

fn sandwich(g: &dmc::cdag::Cdag, s: usize, label: &str) {
    let wavefront = auto_wavefront_bound(&untag_inputs(g), s as u64, AnchorStrategy::All).value;
    let trivial = dmc::core::bounds::IoBound::trivial(g).value;
    let lb = wavefront.max(trivial);
    let opt = optimal_io(g, s, GameKind::Rbw);
    let order = topological_order(g);
    let ub = certified_upper_bound(g, s, &order, EvictionPolicy::Belady).ok();
    if let Some(opt) = opt {
        assert!(lb <= opt as f64, "{label} S={s}: LB {lb} > optimal {opt}");
        if let Some(ub) = ub {
            assert!(opt <= ub, "{label} S={s}: optimal {opt} > UB {ub}");
        }
        // Hong–Kung optimum is never above the RBW optimum.
        if let Some(hk) = optimal_io(g, s, GameKind::HongKung) {
            assert!(hk <= opt, "{label} S={s}: HK {hk} > RBW {opt}");
        }
    }
}

#[test]
fn sandwich_on_chains_and_trees() {
    sandwich(&chains::chain(10), 2, "chain(10)");
    sandwich(&chains::chain(10), 4, "chain(10)");
    sandwich(&chains::binary_reduction(8), 3, "reduction(8)");
    sandwich(&chains::binary_reduction(8), 6, "reduction(8)");
}

#[test]
fn sandwich_on_ladders() {
    for s in [4usize, 5, 7] {
        sandwich(&chains::ladder(3, 3), s, "ladder(3,3)");
    }
    sandwich(&chains::ladder(4, 3), 5, "ladder(4,3)");
}

#[test]
fn sandwich_on_fft() {
    for s in [3usize, 4, 6] {
        sandwich(&fft::fft(4), s, "fft(4)");
    }
    sandwich(&fft::fft(8), 4, "fft(8)");
}

#[test]
fn sandwich_on_fanout_shapes() {
    for m in [3usize, 5] {
        sandwich(&chains::two_stage(m), m + 2, "two_stage");
    }
    sandwich(&chains::independent_chains(3, 3), 2, "independent_chains");
    sandwich(&chains::diamond(), 3, "diamond");
}

#[test]
fn executor_policies_all_valid_on_bigger_kernels() {
    // No exact optimum here (too big) — but every policy must produce a
    // validating game and respect the analytic matmul bound.
    let g = dmc::kernels::matmul::matmul(5);
    let order = topological_order(&g);
    for s in [12usize, 24, 48] {
        let analytic = dmc::kernels::matmul::matmul_io_lower_bound(5, s as u64);
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::Belady,
            EvictionPolicy::Fifo,
        ] {
            let ub = certified_upper_bound(&g, s, &order, policy).expect("fits");
            assert!(
                analytic <= ub as f64,
                "matmul(5) S={s} {policy:?}: analytic {analytic} > UB {ub}"
            );
        }
    }
}
