//! Cross-crate property tests: random CDAGs and random schedules must
//! respect every invariant the theory promises, end to end.

use dmc::cdag::cut::max_min_wavefront;
use dmc::cdag::engine::WavefrontEngine;
use dmc::cdag::flow::is_separating_vertex_set;
use dmc::cdag::reach::{ancestors, descendants};
use dmc::cdag::topo::{is_valid_topological_order, topological_order};
use dmc::cdag::{Cdag, VertexId};
use dmc::core::bounds::decompose::untag_inputs;
use dmc::core::bounds::mincut::{auto_wavefront_bound, AnchorStrategy};
use dmc::core::games::executor::{execute_rbw, EvictionPolicy};
use dmc::core::games::rbw;
use dmc::core::partition::construct::from_trace;
use dmc::core::partition::validate_rbw;
use dmc::kernels::random::{random_layered, RandomDagConfig};
use dmc::machine::{Level, MemoryHierarchy};
use dmc::sim::simulate;
use proptest::prelude::*;

fn arb_cdag() -> impl Strategy<Value = Cdag> {
    (2usize..5, 2usize..7, 0.1f64..0.7, 0u64..1000).prop_map(|(layers, width, p, seed)| {
        random_layered(RandomDagConfig {
            layers,
            width,
            deg: 0,
            edge_prob: p,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Executor games always replay cleanly through the rule validator
    /// and their traces always yield valid Theorem-1 2S-partitions.
    #[test]
    fn executor_traces_validate_and_partition(g in arb_cdag(), s_extra in 1usize..6) {
        let order = topological_order(&g);
        let min_s = g.vertices().map(|v| g.in_degree(v) + 1).max().unwrap_or(1);
        let s = min_s + s_extra;
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Belady, EvictionPolicy::Fifo] {
            let game = execute_rbw(&g, s, &order, policy).expect("budget suffices");
            let certified = rbw::validate(&g, s, &game.trace).expect("trace must be legal");
            prop_assert_eq!(certified, game.io);
            let tp = from_trace(&g, &game.trace, s);
            prop_assert_eq!(validate_rbw(&g, &tp.partition, 2 * s), Ok(()));
            prop_assert!((s as u64) * tp.intervals as u64 >= game.io);
        }
    }

    /// Lower bounds never exceed any executed game's I/O.
    #[test]
    fn bounds_below_every_execution(g in arb_cdag(), s_extra in 1usize..5) {
        let order = topological_order(&g);
        let min_s = g.vertices().map(|v| g.in_degree(v) + 1).max().unwrap_or(1);
        let s = min_s + s_extra;
        let game = execute_rbw(&g, s, &order, EvictionPolicy::Belady).expect("fits");
        let wavefront =
            auto_wavefront_bound(&untag_inputs(&g), s as u64, AnchorStrategy::PerLevel);
        let trivial = dmc::core::bounds::IoBound::trivial(&g).value;
        prop_assert!(wavefront.value <= game.io as f64,
            "wavefront {} > exec {}", wavefront.value, game.io);
        prop_assert!(trivial <= game.io as f64,
            "trivial {trivial} > exec {}", game.io);
    }

    /// The simulator accepts any topological schedule and conserves work:
    /// computes equal compute-vertex count; every input is fetched.
    #[test]
    fn simulator_conserves_work(g in arb_cdag(), procs in 1usize..4, s1 in 4u64..64) {
        let order = topological_order(&g);
        prop_assume!(is_valid_topological_order(&g, &order));
        let h = MemoryHierarchy::new(vec![
            Level::new("L1", procs, s1),
            Level::new("mem", procs, u64::MAX),
        ]).expect("valid");
        let owner: Vec<usize> = (0..g.num_vertices()).map(|i| i % procs).collect();
        let r = simulate(&g, &h, &order, &owner);
        let total: u64 = r.computes_per_proc.iter().sum();
        prop_assert_eq!(total, g.num_compute_vertices() as u64);
        // At least every input crosses the DRAM link once.
        prop_assert!(r.total_dram_reads() >= g.num_inputs() as u64);
    }

    /// Text round-trip through the interchange format is lossless.
    #[test]
    fn text_round_trip(g in arb_cdag()) {
        let text = dmc::cdag::textio::to_text(&g);
        let g2 = dmc::cdag::textio::from_text(&text).expect("parses");
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        for v in g.vertices() {
            prop_assert_eq!(g.is_input(v), g2.is_input(v));
            prop_assert_eq!(g.is_output(v), g2.is_output(v));
        }
    }

    /// The parallel wavefront engine agrees with the serial baseline —
    /// same `w^max`, same winning anchor, and a valid witness cut — on
    /// random layered DAGs at 1, 2, and 4 worker threads.
    #[test]
    fn wavefront_engine_matches_serial_baseline(g in arb_cdag()) {
        let anchors: Vec<VertexId> = g.vertices().collect();
        let serial = max_min_wavefront(&g, &anchors).expect("non-empty graph");
        for threads in [1usize, 2, 4] {
            let run = WavefrontEngine::new(&g).with_threads(threads).run(&anchors);
            let best = run.best.expect("non-empty anchor set");
            prop_assert_eq!(best.size, serial.size, "w^max @ {} threads", threads);
            prop_assert_eq!(best.anchor, serial.anchor, "anchor @ {} threads", threads);
            prop_assert!(run.anchors_evaluated <= run.anchors_considered);
            // The witness cut really separates {x} ∪ Anc(x) from Desc(x).
            let mut sources = ancestors(&g, best.anchor);
            sources.insert(best.anchor.index());
            let sinks = descendants(&g, best.anchor);
            prop_assert!(
                is_separating_vertex_set(&g, &sources, &sinks, &best.cut.vertices),
                "witness cut fails to separate @ {} threads", threads
            );
            if !sinks.is_empty() {
                prop_assert_eq!(best.size, best.cut.vertices.len());
            }
        }
    }

    /// More cache never increases the executor's I/O under Belady.
    #[test]
    fn monotone_in_cache_size(g in arb_cdag()) {
        let order = topological_order(&g);
        let min_s = g.vertices().map(|v| g.in_degree(v) + 1).max().unwrap_or(1);
        let mut prev = u64::MAX;
        for s in [min_s, min_s + 2, min_s + 8, min_s + 32] {
            let game = execute_rbw(&g, s, &order, EvictionPolicy::Belady).expect("fits");
            prop_assert!(game.io <= prev, "S={s}: {} > {prev}", game.io);
            prev = game.io;
        }
    }
}
