//! Acceptance tests for machine-hierarchy validation: every registry
//! kernel on every catalog machine yields a certified sandwich at every
//! cache boundary — pipeline lower bound ≤ measured per-level traffic ≤
//! RBW upper bound — with byte-identical text and JSON reports at any
//! thread count.

use dmc::core::pipeline::{Analyzer, AnalyzerConfig};
use dmc::kernels::catalog::Registry;
use dmc::machine::specs::machine_catalog;
use dmc::sim::simulation::min_feasible_capacity;
use proptest::prelude::*;

fn analyzer(threads: usize) -> Analyzer {
    Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    })
}

/// The registry-wide machine sandwich: every kernel at its defaults, on
/// every catalog machine, at the schedule's minimum feasible per-core
/// S1, is sandwiched at every simulated boundary.
#[test]
fn machine_sandwich_holds_across_registry_and_catalog() {
    let registry = Registry::shared();
    let a = analyzer(1);
    for machine in machine_catalog() {
        for name in registry.names() {
            let spec = registry.defaults(name).expect("registered kernel");
            let g = spec.build();
            let s1 = min_feasible_capacity(&g) as u64;
            let r = a.validate_machine_built(&spec, &g, &machine, s1, None);
            assert_eq!(
                r.levels.len(),
                2,
                "{name} on {}: registers + LLC boundaries",
                machine.name
            );
            for p in &r.levels {
                assert!(
                    p.infeasible.is_none(),
                    "{name} on {} level {} infeasible: {:?}",
                    machine.name,
                    p.level,
                    p.infeasible
                );
                assert_eq!(
                    p.sandwich_ok(),
                    Some(true),
                    "{name} on {} level {} ({}): LB {} OPT {:?} LRU {:?} UB {:?}",
                    machine.name,
                    p.level,
                    p.name,
                    p.certified_lower,
                    p.measured_opt.map(|t| t.io()),
                    p.measured_lru.map(|t| t.io()),
                    p.certified_upper
                );
            }
            assert!(r.sandwich_holds(), "{name} on {}:\n{r}", machine.name);
            // Every row carries a roofline verdict; only the DRAM
            // boundary gets a measured balance.
            assert!(
                r.levels.iter().all(|p| !p.verdict.is_empty()),
                "{name} on {}: empty verdict",
                machine.name
            );
            assert!(
                !r.network_verdict.is_empty(),
                "{name} on {}: no network verdict",
                machine.name
            );
        }
    }
}

/// Text and JSON renders are pure functions of (kernel, machine, S1):
/// byte-identical at 1, 2 and 4 analyzer threads.
#[test]
fn machine_reports_are_byte_identical_across_thread_counts() {
    for (spec, s1) in [("fft(n=8)", 8u64), ("jacobi(n=8,d=1,t=8)", 8)] {
        for machine in machine_catalog() {
            let base = analyzer(1)
                .validate_machine_spec(spec, &machine, s1, None)
                .expect("valid spec");
            let base_text = base.to_string();
            let base_json = serde::json::to_string(&base);
            for threads in [2usize, 4] {
                let r = analyzer(threads)
                    .validate_machine_spec(spec, &machine, s1, None)
                    .expect("valid spec");
                assert_eq!(
                    r.to_string(),
                    base_text,
                    "{spec} on {} @ {threads} threads (text)",
                    machine.name
                );
                assert_eq!(
                    serde::json::to_string(&r),
                    base_json,
                    "{spec} on {} @ {threads} threads (json)",
                    machine.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sandwich survives S1 slack: any registered kernel, any
    /// catalog machine, any feasible S1 at or above the schedule's
    /// minimum stays sandwiched at every boundary.
    #[test]
    fn machine_sandwich_survives_s1_slack(
        kernel_idx in 0usize..Registry::shared().len(),
        machine_idx in 0usize..3,
        extra in 0u64..12
    ) {
        let registry = Registry::shared();
        let name = registry.names()[kernel_idx];
        let spec = registry.defaults(name).expect("registered kernel");
        let g = spec.build();
        let machine = &machine_catalog()[machine_idx];
        let s1 = min_feasible_capacity(&g) as u64 + extra;
        let r = analyzer(1).validate_machine_built(&spec, &g, machine, s1, None);
        for p in &r.levels {
            prop_assert!(p.infeasible.is_none(), "{} on {} level {}", name, machine.name, p.level);
            prop_assert_eq!(
                p.sandwich_ok(), Some(true),
                "{} on {} level {}: {:?}", name, machine.name, p.level, p
            );
        }
        prop_assert!(r.sandwich_holds());
    }
}
