//! End-to-end tests of the unified bound-analysis pipeline: the PR's
//! acceptance scenario on the shipped composite, Theorem-2 additivity on
//! disjoint unions, and property tests on random layered DAGs (RBW
//! sandwich + thread-count invariance).

use dmc::cdag::builder::disjoint_union;
use dmc::cdag::textio::from_text;
use dmc::cdag::Cdag;
use dmc::core::games::optimal::{optimal_io, GameKind};
use dmc::core::pipeline::{Analyzer, AnalyzerConfig};
use dmc::kernels::chains;
use dmc::kernels::random::{random_layered, RandomDagConfig};
use proptest::prelude::*;
use std::path::PathBuf;

fn analyzer(sram: u64, threads: usize) -> Analyzer {
    Analyzer::new(AnalyzerConfig {
        sram,
        threads,
        ..AnalyzerConfig::default()
    })
}

fn shipped_composite() -> Cdag {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/graphs/composite.cdag");
    from_text(&std::fs::read_to_string(path).expect("composite.cdag ships with the repo"))
        .expect("composite.cdag parses")
}

/// The PR acceptance scenario: on the shipped two-component composite the
/// per-component Theorem-2 sum strictly beats the best single whole-graph
/// method, and the full report is bit-identical at any thread count.
#[test]
fn composite_acceptance() {
    let g = shipped_composite();
    let base = analyzer(4, 1).analyze(&g);
    assert_eq!(base.component_count, 2);
    let composed = base.composed.as_ref().expect("two components");
    let best_single = base.best_whole_graph.as_ref().expect("baseline on").value;
    assert!(
        composed.value > best_single,
        "Theorem-2 sum {} must strictly beat the single-method best {best_single}",
        composed.value
    );
    assert_eq!(base.bound.value, composed.value);
    // The provenance tree reaches the per-component Lemma-2 leaves.
    assert_eq!(composed.provenance.children.len(), 2);
    for child in &composed.provenance.children {
        assert!(!child.provenance.children.is_empty(), "leaf-only child");
    }
    for threads in [2usize, 4] {
        let r = analyzer(4, threads).analyze(&g);
        assert_eq!(r.to_string(), base.to_string(), "@ {threads} threads");
    }
}

/// Theorem-2 additivity: analyzing a disjoint union equals summing the
/// pipeline's per-kernel results.
#[test]
fn disjoint_union_is_additive() {
    let parts = [chains::ladder(6, 6), chains::binary_reduction(8)];
    let union = disjoint_union(&parts);
    let report = analyzer(3, 2).analyze(&union);
    let composed = report.composed.as_ref().expect("two components");
    let per_piece: f64 = parts
        .iter()
        .map(|g| analyzer(3, 1).analyze(g).bound.value)
        .sum();
    assert_eq!(composed.value, per_piece);
    assert_eq!(report.bound.value, per_piece);
}

fn arb_cdag() -> impl Strategy<Value = Cdag> {
    (2usize..5, 2usize..6, 0.1f64..0.7, 0u64..1000).prop_map(|(layers, width, p, seed)| {
        random_layered(RandomDagConfig {
            layers,
            width,
            deg: 0,
            edge_prob: p,
            seed,
        })
    })
}

/// Smaller instances for the sandwich test — the exact RBW solver's
/// state space grows exponentially in `|V|`.
fn arb_tiny_cdag() -> impl Strategy<Value = Cdag> {
    (2usize..4, 2usize..4, 0.15f64..0.7, 0u64..1000).prop_map(|(layers, width, p, seed)| {
        random_layered(RandomDagConfig {
            layers,
            width,
            deg: 0,
            edge_prob: p,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RBW sandwich: the pipeline's certified bound never exceeds the
    /// exact RBW optimum.
    #[test]
    fn pipeline_bound_below_optimal(g in arb_tiny_cdag(), s_extra in 1usize..5) {
        let min_s = g.vertices().map(|v| g.in_degree(v) + 1).max().unwrap_or(1);
        let s = min_s + s_extra;
        let report = analyzer(s as u64, 1).analyze(&g);
        if let Some(opt) = optimal_io(&g, s, GameKind::Rbw) {
            prop_assert!(
                report.bound.value <= opt as f64,
                "pipeline {} > optimal {opt}",
                report.bound.value
            );
        }
    }

    /// The report — text and JSON — is invariant under the thread count.
    #[test]
    fn pipeline_invariant_in_threads(g in arb_cdag(), s in 2u64..6) {
        let base = analyzer(s, 1).analyze(&g);
        for threads in [2usize, 4] {
            let r = analyzer(s, threads).analyze(&g);
            prop_assert_eq!(r.to_string(), base.to_string());
            prop_assert_eq!(serde::json::to_string(&r), serde::json::to_string(&base));
        }
    }

    /// Composing over a union of two random DAGs equals the sum of their
    /// individual pipeline results.
    #[test]
    fn pipeline_additive_on_unions(a in arb_cdag(), b in arb_cdag(), s in 2u64..6) {
        let union = disjoint_union(&[a.clone(), b.clone()]);
        let whole = analyzer(s, 2).analyze(&union);
        let sum = analyzer(s, 1).analyze(&a).bound.value
            + analyzer(s, 1).analyze(&b).bound.value;
        let composed = whole.composed.as_ref().expect("disjoint parts");
        prop_assert_eq!(composed.value, sum);
    }
}
