//! Acceptance tests for the empirical validation subsystem: measured I/O
//! from the cache simulator sandwiched between certified bounds for the
//! catalog kernels, thread-count-invariant byte-identical reports, and a
//! registry-wide property test of the sandwich invariant.

use dmc::cdag::topo::topological_order;
use dmc::core::pipeline::{Analyzer, AnalyzerConfig};
use dmc::kernels::catalog::Registry;
use dmc::sim::simulation::{CachePolicy, Simulation};
use proptest::prelude::*;

fn analyzer(threads: usize) -> Analyzer {
    Analyzer::new(AnalyzerConfig {
        threads,
        ..AnalyzerConfig::default()
    })
}

// The four schedule-hook kernels on a 3-point S-sweep each — the same
// table the E15 experiment renders, so the `repro` output and this
// acceptance suite cannot drift apart.
use dmc_bench::E15_CASES as CASES;

#[test]
fn sandwich_holds_for_four_kernels_on_three_point_sweeps() {
    for (spec, srams) in CASES {
        let r = analyzer(1).validate_spec(spec, &srams, None).expect(spec);
        assert_eq!(r.points.len(), 3, "{spec}");
        for p in &r.points {
            assert!(p.infeasible.is_none(), "{spec} S={}", p.sram);
            let (opt, lru) = (
                p.measured_opt.as_ref().expect("measured"),
                p.measured_lru.as_ref().expect("measured"),
            );
            let ub = p.certified_upper.expect("feasible");
            assert!(
                p.certified_lower <= opt.io() as f64 && opt.io() <= lru.io() && lru.io() <= ub,
                "{spec} S={}: {} !<= {} !<= {} !<= {ub}",
                p.sram,
                p.certified_lower,
                opt.io(),
                lru.io()
            );
        }
        assert!(r.sandwich_holds(), "{spec}");
    }
}

#[test]
fn validation_reports_are_byte_identical_at_any_thread_count() {
    for (spec, srams) in CASES {
        let base = analyzer(1).validate_spec(spec, &srams, None).expect(spec);
        let base_text = base.to_string();
        let base_json = serde::json::to_string(&base);
        for threads in [2usize, 4] {
            let r = analyzer(threads)
                .validate_spec(spec, &srams, None)
                .expect(spec);
            assert_eq!(r.to_string(), base_text, "{spec} @ {threads} threads");
            assert_eq!(
                serde::json::to_string(&r),
                base_json,
                "{spec} @ {threads} threads"
            );
        }
    }
}

/// The schedule hooks earn their keep: under cache pressure the kernel's
/// tiled/blocked schedule moves measurably fewer words than the default
/// Kahn order on the same CDAG — here by more than 2x.
#[test]
fn kernel_schedules_beat_the_default_order_under_pressure() {
    let registry = Registry::shared();
    let mut sim = Simulation::new();
    // (spec, S, required improvement factor ×100): the skewed stencil
    // tiling wins big; the blocked matmul sweep wins a solid fraction.
    for (spec_str, s, factor_pct) in [
        ("jacobi(n=64,d=1,t=16)", 20u64, 200u64),
        ("matmul(n=8)", 18, 125),
    ] {
        let spec = registry.parse(spec_str).expect("valid spec");
        let g = spec.build();
        let tuned = spec.schedule_source(&g, s);
        let tuned_io = sim
            .run(&g, &tuned.order, CachePolicy::Lru, s)
            .expect("feasible")
            .io();
        let default_io = sim
            .run(&g, &topological_order(&g), CachePolicy::Lru, s)
            .expect("feasible")
            .io();
        assert!(
            tuned_io * factor_pct < default_io * 100,
            "{spec_str} S={s}: tuned {tuned_io} ('{}') not {factor_pct}% better \
             than default {default_io}",
            tuned.note
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The sandwich invariant across the whole kernel registry: any
    /// registered kernel at its defaults, any feasible S, measured under
    /// both policies, lands between the certified bounds.
    #[test]
    fn sandwich_across_the_registry(
        idx in 0usize..Registry::shared().len(),
        extra in 0u64..12
    ) {
        let registry = Registry::shared();
        let name = registry.names()[idx];
        let spec = registry.defaults(name).expect("registered");
        let g = spec.build();
        let smin = dmc::sim::simulation::min_feasible_capacity(&g) as u64;
        let s = smin + extra;
        let r = analyzer(1).validate_kernel(&spec, &[s], None);
        let p = &r.points[0];
        prop_assert!(p.infeasible.is_none(), "{} S={} infeasible", name, s);
        prop_assert_eq!(p.sandwich_ok(), Some(true), "{} S={}: {:?}", name, s, p);
    }
}
