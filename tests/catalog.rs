//! End-to-end tests of the kernel catalog: the PR acceptance scenario
//! (spec-built kernels produce the same pipeline bound as the hand-wired
//! builders), spec round-trip properties over random valid specs, and
//! the pipeline-vs-analytic-upper-bound sandwich where a kernel provides
//! an achievable schedule.

use dmc::core::pipeline::{Analyzer, AnalyzerConfig};
use dmc::kernels::catalog::{KernelSpec, ParamKind, Registry};
use dmc::kernels::grid::Stencil;
use dmc::kernels::{composite, fft, jacobi, matmul};
use proptest::prelude::*;

fn analyzer(sram: u64, threads: usize) -> Analyzer {
    Analyzer::new(AnalyzerConfig {
        sram,
        threads,
        ..AnalyzerConfig::default()
    })
}

/// PR acceptance: for Jacobi, FFT, matmul, and the composite, `repro
/// analyze --kernel <spec>`'s backend (`Analyzer::analyze_spec`) produces
/// the same certified bound — value and full provenance tree — as the
/// pipeline run on the hand-wired builder output.
#[test]
fn spec_bound_matches_hand_wired_equivalent() {
    let cases: Vec<(&str, dmc::cdag::Cdag)> = vec![
        (
            "jacobi(n=6,d=2,t=3,stencil=star)",
            jacobi::jacobi_cdag(6, 2, 3, Stencil::VonNeumann).cdag,
        ),
        (
            "jacobi(n=4,d=2,t=2,stencil=box)",
            jacobi::jacobi_cdag(4, 2, 2, Stencil::Moore).cdag,
        ),
        ("fft(n=16)", fft::fft(16)),
        ("matmul(n=4)", matmul::matmul(4)),
        (
            "matmul(n=4,accumulate=chain)",
            matmul::matmul_chain_accumulate(4),
        ),
        ("composite(n=3)", composite::composite(3)),
    ];
    let a = analyzer(4, 1);
    for (spec, hand_built) in cases {
        let via_spec = a.analyze_spec(spec).expect("valid spec");
        let via_graph = a.analyze(&hand_built);
        assert_eq!(
            via_spec.bound.value, via_graph.bound.value,
            "{spec}: spec-built bound diverges from hand-wired"
        );
        assert_eq!(
            via_spec.bound.to_string(),
            via_graph.bound.to_string(),
            "{spec}: provenance trees diverge"
        );
        assert_eq!(via_spec.vertices, via_graph.vertices, "{spec}");
        assert_eq!(via_spec.edges, via_graph.edges, "{spec}");
    }
}

/// Every kernel family the experiment tables use is reachable through
/// `Registry::get` and buildable from a bare-name spec.
#[test]
fn registry_covers_the_experiment_families() {
    let registry = Registry::shared();
    for name in [
        "jacobi",
        "cg",
        "gmres",
        "fft",
        "matmul",
        "composite",
        "outer",
        "pyramid",
        "scan",
        "dot",
        "saxpy",
        "chain",
        "diamond",
        "reduction",
        "chains",
        "ladder",
        "two_stage",
        "random",
    ] {
        assert!(registry.get(name).is_some(), "{name} not registered");
        let spec = registry.parse(name).expect("bare name parses");
        assert!(spec.build().num_vertices() >= 1, "{name} builds");
    }
}

/// Draws a random syntactically-valid spec string over the registry:
/// a random kernel with every parameter assigned a value near the bottom
/// of its declared range (so builds stay small). Cross-parameter
/// constraints (power-of-two sizes) are left to `prop_assume` in the
/// consuming tests — the registry's own validation is what's under test.
fn arb_spec_string() -> impl Strategy<Value = String> {
    let n_kernels = Registry::shared().len();
    (0usize..n_kernels, proptest::collection::vec(0u64..64, 8)).prop_map(|(k, raws)| {
        let registry = Registry::shared();
        let kernel = registry.iter().nth(k).expect("index in range");
        let args: Vec<String> = kernel
            .params()
            .iter()
            .zip(&raws)
            .map(|(p, &raw)| {
                let value = match p.kind {
                    ParamKind::UInt { min, max } => {
                        // Span at most 4 values above the minimum.
                        let hi = max.min(min.saturating_add(3));
                        (min + raw % (hi - min + 1)).to_string()
                    }
                    ParamKind::Choice(choices) => choices[raw as usize % choices.len()].to_string(),
                };
                format!("{}={}", p.name, value)
            })
            .collect();
        if args.is_empty() {
            kernel.name().to_string()
        } else {
            format!("{}({})", kernel.name(), args.join(","))
        }
    })
}

/// Parses a generated spec, skipping (via `prop_assume`-style rejection)
/// the ones that violate cross-parameter constraints such as
/// power-of-two sizes.
fn parse_or_reject(spec: &str) -> Result<KernelSpec<'static>, TestCaseError> {
    match Registry::shared().parse(spec) {
        Ok(parsed) => Ok(parsed),
        Err(_) => Err(TestCaseError::reject(&format!(
            "spec '{spec}' fails cross-parameter validation"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `parse(render(spec)) == spec` for random valid specs: rendering is
    /// canonical and lossless.
    #[test]
    fn parse_render_round_trips(spec_string in arb_spec_string()) {
        let spec = parse_or_reject(&spec_string)?;
        let rendered = spec.render();
        let reparsed = Registry::shared()
            .parse(&rendered)
            .expect("canonical render must parse");
        prop_assert_eq!(&reparsed, &spec, "{} -> {}", spec_string, rendered);
        // Rendering is a fixed point.
        prop_assert_eq!(reparsed.render(), rendered);
    }

    /// Where a kernel provides an achievable schedule
    /// (`analytic_upper_bound`), the pipeline's certified lower bound can
    /// never exceed it: LB ≤ optimal RBW cost ≤ analytic UB.
    #[test]
    fn pipeline_bound_below_analytic_upper(spec_string in arb_spec_string(), s in 2u64..10) {
        let spec = parse_or_reject(&spec_string)?;
        if let Some(upper) = spec.kernel().analytic_upper_bound(spec.values(), s) {
            let report = analyzer(s, 1).analyze_kernel(&spec);
            prop_assert!(
                report.bound.value <= upper.value + 1e-9,
                "{}: pipeline {} > analytic upper {} ({})",
                spec.render(),
                report.bound.value,
                upper.value,
                upper.note
            );
        }
    }

    /// Spec-driven reports stay bit-identical across thread counts (the
    /// catalog context must not break the pipeline's determinism).
    #[test]
    fn spec_reports_invariant_in_threads(spec_string in arb_spec_string()) {
        let spec = parse_or_reject(&spec_string)?;
        let base = analyzer(3, 1).analyze_kernel(&spec);
        for threads in [2, 4] {
            let threaded = analyzer(3, threads).analyze_kernel(&spec);
            prop_assert_eq!(base.to_string(), threaded.to_string());
            prop_assert_eq!(
                serde::json::to_string(&base),
                serde::json::to_string(&threaded)
            );
        }
    }
}
